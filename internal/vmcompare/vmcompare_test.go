package vmcompare

import (
	"strings"
	"testing"

	"repro/internal/vm"
)

func TestCompareAllProfiles(t *testing.T) {
	results, err := Compare(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4 profiles", len(results))
	}
	for _, r := range results {
		if len(r.TrialMS) != Trials {
			t.Fatalf("%s: %d trials", r.Profile.Name, len(r.TrialMS))
		}
		for i, ms := range r.TrialMS {
			if ms <= 0 {
				t.Fatalf("%s trial %d: non-positive latency %v", r.Profile.Name, i+1, ms)
			}
		}
	}
}

func TestManagedRuntimesWarmUp(t *testing.T) {
	results, err := Compare(nil)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ProfileResult{}
	for _, r := range results {
		byName[r.Profile.Name] = r
	}
	// Every JIT-ing runtime shows a first-trial penalty; native does not.
	for _, name := range []string{"SSCLI", "CLR", "JVM"} {
		if f := byName[name].WarmupFactor(); f < 1.5 {
			t.Errorf("%s warm-up factor %.2f, want ≥ 1.5", name, f)
		}
	}
	native := byName["Native"]
	// Native's first trial still pays the cold page cache, but far less
	// than SSCLI's JIT-dominated first trial.
	if native.FirstTrialMS() >= byName["SSCLI"].FirstTrialMS() {
		t.Errorf("native first trial %.3f not below SSCLI %.3f",
			native.FirstTrialMS(), byName["SSCLI"].FirstTrialMS())
	}
	// SSCLI is the slowest starter of the four — that is the paper's
	// platform.
	for _, name := range []string{"CLR", "JVM", "Native"} {
		if byName[name].FirstTrialMS() >= byName["SSCLI"].FirstTrialMS() {
			t.Errorf("%s first trial %.3f not below SSCLI %.3f",
				name, byName[name].FirstTrialMS(), byName["SSCLI"].FirstTrialMS())
		}
	}
}

func TestSteadyStatesConverge(t *testing.T) {
	// Warm trials are dominated by the (shared) storage path, so all
	// runtimes converge within an order of magnitude.
	results, err := Compare(nil)
	if err != nil {
		t.Fatal(err)
	}
	min, max := results[0].SteadyMS(), results[0].SteadyMS()
	for _, r := range results {
		s := r.SteadyMS()
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if max > 10*min {
		t.Fatalf("steady states diverge: min %.4f max %.4f", min, max)
	}
}

func TestCompareSubset(t *testing.T) {
	results, err := Compare([]vm.Profile{vm.ProfileJVM()})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Profile.Name != "JVM" {
		t.Fatalf("subset results: %+v", results)
	}
}

func TestTableAndFigure(t *testing.T) {
	results, err := Compare(nil)
	if err != nil {
		t.Fatal(err)
	}
	tb := Table(results).Render()
	for _, want := range []string{"SSCLI", "CLR", "JVM", "Native", "Warm-up factor"} {
		if !strings.Contains(tb, want) {
			t.Errorf("table missing %q", want)
		}
	}
	fig := Figure(results).RenderLines(40, 10)
	if !strings.Contains(fig, "SSCLI") {
		t.Fatalf("figure render:\n%s", fig)
	}
}

func TestDeterministic(t *testing.T) {
	a, err := Compare(nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compare(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for j := range a[i].TrialMS {
			if a[i].TrialMS[j] != b[i].TrialMS[j] {
				t.Fatalf("nondeterministic at %d/%d", i, j)
			}
		}
	}
}
