# Single source of truth for the build/test commands; CI runs exactly
# these targets (.github/workflows/ci.yml), so a green `make ci` locally
# means a green pipeline.

GO ?= go

.PHONY: all build test race bench bench-cold bench-contention bench-json stdfs-smoke fmt vet fmt-check ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency suite: the sharded buffer cache, concurrent trace
# replay, the page-table fuzz corpus, and the web server all run under
# the race detector.
race:
	$(GO) test -race ./...

# Benchmark smoke: every benchmark runs exactly once so regressions in
# the harness itself (not perf) surface in CI quickly.
bench:
	$(GO) test -bench=. -benchtime=1x ./...

# Cold-path smoke: the miss/evict cycle and the simdisk model benchmarks
# run once, named explicitly. `make bench` already covers them via its
# -bench=. sweep; this target exists so the cold path stays exercised
# even if that pattern is ever narrowed, and as the one-command repro
# for cold-path harness breakage.
bench-cold:
	$(GO) test -run '^$$' -bench 'BenchmarkCacheMissEvict' -benchtime=1x ./internal/buffercache
	$(GO) test -run '^$$' -bench . -benchtime=1x ./internal/simdisk

# Contention smoke: the partitioned replay through the shared disk
# queue at 1, 4, and 8 lanes. One lane must serve inline (the private
# model nested exactly); 4 and 8 lanes exercise the event-merged
# dispatch gate end to end from the command line.
bench-contention:
	$(GO) run ./cmd/tracebench -app Parallel -workers 1 -concurrent -shards 8 -disk-queue shared -sched sstf
	$(GO) run ./cmd/tracebench -app Parallel -workers 4 -concurrent -shards 8 -disk-queue shared -sched sstf
	$(GO) run ./cmd/tracebench -app Parallel -workers 8 -concurrent -shards 8 -disk-queue shared -sched sstf

# Machine-readable bench trajectory: the hot-path microbenchmarks
# (including the engine-only miss/evict row), the shard/worker scaling,
# the write-back ablation, and the shared-queue contention rows of the
# simulated-parallel replay. CI uploads the file as an artifact; the
# committed copy tracks the trajectory in-repo and doubles as the
# regression baseline — the run fails if an engine-only guarded row
# (cache_warm_read_64k or cache_miss_evict) regresses more than 25%
# against it. A failed run leaves the baseline untouched and writes the
# regressed report to BENCH_6.json.failed.json.
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_6.json -baseline BENCH_6.json

# End-to-end smoke for the io/fs facade: the example runs unmodified
# stdlib code (fs.WalkDir, fs.ReadFile, archive/tar) against the
# simulated store and prints the ledger costs. It exercises directory
# synthesis, the handle Read/Seek path, and session-lane billing in one
# deterministic program.
stdfs-smoke:
	$(GO) run ./examples/stdfs

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

ci: build vet fmt-check test race bench bench-cold bench-contention stdfs-smoke
