# Single source of truth for the build/test commands; CI runs exactly
# these targets (.github/workflows/ci.yml), so a green `make ci` locally
# means a green pipeline.

GO ?= go

.PHONY: all build test race bench bench-cold bench-contention bench-trace bench-faults bench-avail bench-json stdfs-smoke distfault-smoke fmt vet fmt-check ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency suite: the sharded buffer cache, concurrent trace
# replay, the page-table fuzz corpus, and the web server all run under
# the race detector. The explicit -run Fuzz pass replays the checked-in
# fuzz seed corpora (trace decode, dump parse, page table) as regular
# race-instrumented tests.
race:
	$(GO) test -race ./...
	$(GO) test -race -run 'Fuzz' ./internal/trace/ ./internal/buffercache/ ./internal/simdisk/

# Benchmark smoke: every benchmark runs exactly once so regressions in
# the harness itself (not perf) surface in CI quickly.
bench:
	$(GO) test -bench=. -benchtime=1x ./...

# Cold-path smoke: the miss/evict cycle and the simdisk model benchmarks
# run once, named explicitly. `make bench` already covers them via its
# -bench=. sweep; this target exists so the cold path stays exercised
# even if that pattern is ever narrowed, and as the one-command repro
# for cold-path harness breakage.
bench-cold:
	$(GO) test -run '^$$' -bench 'BenchmarkCacheMissEvict' -benchtime=1x ./internal/buffercache
	$(GO) test -run '^$$' -bench . -benchtime=1x ./internal/simdisk

# Contention smoke: the partitioned replay through the shared disk
# queue at 1, 4, and 8 lanes. One lane must serve inline (the private
# model nested exactly); 4 and 8 lanes exercise the event-merged
# dispatch gate end to end from the command line.
bench-contention:
	$(GO) run ./cmd/tracebench -app Parallel -workers 1 -concurrent -shards 8 -disk-queue shared -sched sstf
	$(GO) run ./cmd/tracebench -app Parallel -workers 4 -concurrent -shards 8 -disk-queue shared -sched sstf
	$(GO) run ./cmd/tracebench -app Parallel -workers 8 -concurrent -shards 8 -disk-queue shared -sched sstf

# Trace-pipeline smoke: the v2 encode/decode/replay benchmarks run once
# (records/sec, bytes/record, 0 allocs/record), then the out-of-core
# example streams a generator -> encoder -> pipe -> Scanner ->
# ReplayStream pipeline end to end and prints bytes/record and peak
# heap. Together they exercise every stage of the out-of-core path from
# the command line.
bench-trace:
	$(GO) test -run '^$$' -bench 'BenchmarkScanV1|BenchmarkScanV2|BenchmarkEncodeV2' -benchtime=1x ./internal/trace
	$(GO) test -run '^$$' -bench 'BenchmarkReplayStream' -benchtime=1x ./internal/tracesim
	$(GO) run ./examples/outofcore -records 100000

# Fault-injection smoke: the degraded-mode path end to end. The
# fault-injected and rebuilding 8-lane replays must be bit-identical
# across runs under the race detector, then tracebench drives the same
# degraded RAID5 array from the command line: a dead member served by
# reconstruct-reads, seeded op-level injection absorbed by
# retry/backoff (budget <= max retries, so nothing fails), and the
# dead member rebuilding onto a spare through the shared queue while
# the foreground lanes replay.
bench-faults:
	$(GO) test -race -count=1 -run 'TestFaultInjectedReplayDeterministic|TestRebuildingReplayDeterministic' ./internal/tracesim
	$(GO) run ./cmd/tracebench -app Parallel -workers 8 -concurrent -shards 8 -disk-queue shared -sched sstf -disks 4 -raid raid5 -faults "fail:1@0s"
	$(GO) run ./cmd/tracebench -app Parallel -workers 8 -concurrent -shards 8 -disk-queue shared -sched sstf -disks 4 -raid raid5 -faults "fail:1@0s" -inject "seed=7,rate=20,budget=4" -retry "max=4,base=50us"
	$(GO) run ./cmd/tracebench -app Parallel -workers 8 -concurrent -shards 8 -disk-queue shared -sched sstf -disks 4 -raid raid5 -faults "fail:1@0s" -rebuild 1

# Availability smoke: the distributed fault-tolerance path end to end.
# The node-kill sweep (consistent-hash failover, RPC deadlines, backoff,
# the availability curve) must be bit-identical across ten runs under
# the race detector; then cmd/distbench drives the three ablation legs
# from the command line — healthy, a server killed at 20 ms, and the
# kill while every server rebuilds two dead mirror members from a
# 2-spare pool.
bench-avail:
	$(GO) test -race -count=10 -run 'TestNodeKillSweepDeterministic' ./internal/distbench
	$(GO) run ./cmd/distbench -nodes 8 -servers 3 -requests 32 -deadline 5ms -retry "max=3,base=200us" -curve=false
	$(GO) run ./cmd/distbench -nodes 8 -servers 3 -requests 32 -deadline 5ms -retry "max=3,base=200us" -net-faults "kill:server0@20ms"
	$(GO) run ./cmd/distbench -nodes 8 -servers 3 -requests 32 -deadline 5ms -retry "max=3,base=200us" -net-faults "kill:server0@20ms" -disks 3 -raid raid1 -faults "fail:1@0s,fail:2@0s" -spares 2 -rebuild 1,2 -curve=false

# Machine-readable bench trajectory: the hot-path microbenchmarks
# (including the engine-only miss/evict row and the per-record trace
# decode/replay rows), the trace-format bytes/record table, the
# shard/worker scaling, the write-back ablation, the shared-queue
# contention rows, and the degraded-mode fault_recovery ablation of
# the simulated-parallel replay, and the distributed availability
# ablation. CI uploads the file as an artifact;
# the committed copy tracks the trajectory in-repo and doubles as the
# regression baseline — the run fails if an engine-only guarded row
# (cache_warm_read_64k, cache_miss_evict, trace_decode_v1 or
# trace_decode_v2) regresses more than 25% against it. A failed run
# leaves the baseline untouched and writes the regressed report to
# BENCH_9.json.failed.json.
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_9.json -baseline BENCH_9.json

# End-to-end smoke for the io/fs facade: the example runs unmodified
# stdlib code (fs.WalkDir, fs.ReadFile, archive/tar) against the
# simulated store and prints the ledger costs. It exercises directory
# synthesis, the handle Read/Seek path, and session-lane billing in one
# deterministic program.
stdfs-smoke:
	$(GO) run ./examples/stdfs

# Distributed-fault smoke: examples/distributed ends with the node-kill
# demo (three replicas, server0 killed at 20 ms, failover curve), and
# webbench's degraded mode sheds web-tier load while the RAID1 array
# rebuilds two members from the spare pool.
distfault-smoke:
	$(GO) run ./examples/distributed
	$(GO) run ./cmd/webbench -mode degraded -addr 127.0.0.1:0 -clients 12 -requests 40

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

ci: build vet fmt-check test race bench bench-cold bench-contention bench-trace bench-faults bench-avail stdfs-smoke distfault-smoke
