// Tracegen writes synthetic application traces (Dmine, Pgrep, LU,
// Titan, Cholesky, plus the Parallel and Mixed composites) to disk in
// the UMDT binary format, for use with tracebench -trace.
//
// v2 output streams generator → encoder → file, so multi-GB fixtures
// author in constant memory; v1 (the fixed-width legacy format)
// materializes the trace because its header carries the record count up
// front.
//
// Usage:
//
//	tracegen -out ./traces -filesize 1073741824
//	tracegen -app Parallel -records 100000000 -format v2 -out ./traces
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/trace"
	"repro/internal/tracegen"
)

func main() {
	var (
		out      = flag.String("out", ".", "output directory")
		fileSize = flag.Int64("filesize", 1<<30, "sample file size in bytes")
		requests = flag.Int("requests", 0, "request count override (0 = per-app default)")
		records  = flag.Int("records", 0, "approximate record-count target; wins over -requests (data records dominate, so the request count is set to it)")
		sample   = flag.String("sample", "sample-1gb.dat", "sample file name recorded in the header")
		format   = flag.String("format", "v1", "trace encoding: v1 (48 B/record fixed-width) | v2 (columnar, streamed)")
		app      = flag.String("app", "", "single application to generate (Dmine, Pgrep, LU, Titan, Cholesky, Parallel, Mixed); default: the five paper apps")
		workers  = flag.Int("workers", 0, "worker processes for -app Parallel (0 = its default)")
	)
	flag.Parse()

	if *format != "v1" && *format != "v2" {
		fatal(fmt.Errorf("unknown format %q (want v1 or v2)", *format))
	}
	reqs := *requests
	if *records > 0 {
		reqs = *records
	}
	params := tracegen.Params{SampleFile: *sample, FileSize: *fileSize, Requests: reqs, Workers: *workers}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	apps := tracegen.AppNames
	if *app != "" {
		apps = []string{*app}
	}
	for _, name := range apps {
		path := filepath.Join(*out, strings.ToLower(name)+".trace")
		n, size, err := writeTrace(path, name, params, *format)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-10s -> %s (%s, %d records, %.1f bytes/record)\n",
			name, path, *format, n, float64(size)/float64(n))
	}
}

// writeTrace authors one application's trace at path, returning the
// record count and encoded byte size.
func writeTrace(path, app string, p tracegen.Params, format string) (int64, int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()

	var n int64
	if format == "v2" {
		// Streamed: records flow straight to disk.
		bw := bufio.NewWriterSize(f, 1<<20)
		h, err := tracegen.EncodeV2(bw, app, p)
		if err != nil {
			return 0, 0, err
		}
		if err := bw.Flush(); err != nil {
			return 0, 0, err
		}
		n = int64(h.NumRecords)
	} else {
		tr, err := tracegen.Generate(app, p)
		if err != nil {
			return 0, 0, err
		}
		if err := trace.Write(f, tr); err != nil {
			return 0, 0, err
		}
		n = int64(len(tr.Records))
	}
	if err := f.Close(); err != nil {
		return 0, 0, err
	}
	info, err := os.Stat(path)
	if err != nil {
		return 0, 0, err
	}
	return n, info.Size(), nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
	os.Exit(1)
}
