// Tracegen writes the five synthetic application traces (Dmine, Pgrep,
// LU, Titan, Cholesky) to disk in the UMDT binary format, for use with
// tracebench -trace.
//
// Usage:
//
//	tracegen -out ./traces -filesize 1073741824
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/trace"
	"repro/internal/tracegen"
)

func main() {
	var (
		out      = flag.String("out", ".", "output directory")
		fileSize = flag.Int64("filesize", 1<<30, "sample file size in bytes")
		requests = flag.Int("requests", 0, "request count override (0 = per-app default)")
		sample   = flag.String("sample", "sample-1gb.dat", "sample file name recorded in the header")
	)
	flag.Parse()

	params := tracegen.Params{SampleFile: *sample, FileSize: *fileSize, Requests: *requests}
	traces, err := tracegen.All(params)
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, name := range tracegen.AppNames {
		tr := traces[name]
		path := filepath.Join(*out, strings.ToLower(name)+".trace")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := trace.Write(f, tr); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		stats := trace.ComputeStats(tr)
		fmt.Printf("%-10s -> %s (%d records, %d reads, %d writes, %d seeks)\n",
			name, path, len(tr.Records),
			stats.Ops[trace.OpRead], stats.Ops[trace.OpWrite], stats.Ops[trace.OpSeek])
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
	os.Exit(1)
}
