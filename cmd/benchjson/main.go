// Benchjson emits the bench trajectory as machine-readable JSON (`make
// bench-json` writes BENCH_9.json, CI uploads it and fails on hot-path
// regressions). Seven sections:
//
//   - hot_path: in-process microbenchmarks of the replay engine's wall
//     hot paths — warm 64 KB reads (dense and sparse), the single-page
//     cache hit, warm write-behind, and the cold miss/evict cycle
//     (cache_miss_evict: a stride of single-page reads through a cache
//     an order of magnitude smaller, so every read is a miss and every
//     install an eviction) — reporting ns/op and allocs/op, plus each
//     row's value from the -baseline report so the file carries its own
//     before/after comparison. The warm and steady-state evict paths
//     are pinned at 0 allocs/op by tests; the ns/op trajectory is
//     guarded by -baseline (see below). The trace pipeline adds
//     per-record rows: trace_decode_v1 / trace_decode_v2 (streaming
//     Scanner decode, both pinned at 0 allocs/record by tests) and
//     replay_stream (the full out-of-core replay: decode, per-PID
//     routing, session lanes, merge).
//   - trace_format: encoded bytes/record for v1 (fixed-width) and v2
//     (columnar delta/varint) on the Parallel and Mixed workloads — the
//     on-disk cost the streaming pipeline pays per record.
//   - worker_scaling: the n-worker partitioned replay on an 8-stripe
//     write-back store, one virtual-clock lane per worker. Simulated
//     throughput (operations per simulated second) scales with workers
//     because lanes overlap; sim_speedup_vs_1 is the headline number,
//     and wall_ns tracks the replay engine's real cost.
//   - writeback_ablation: the same 8-worker replay with write-back off
//     (flush on close) versus on under each disk scheduling policy.
//     Batches reach the scheduler in raw dirtying order, so the
//     policies genuinely differ (FCFS is not a pre-sorted sweep).
//   - sharedq_contention: the partitioned replay routed through the
//     shared disk queue (sharedq_l{1,4,8}_{fcfs,sstf,scan} rows):
//     foreground read latency, total elapsed, and queue stats as lanes
//     contend one event-merged queue under each policy. The simulated
//     quantities are deterministic.
//   - fault_recovery: the degraded-mode ablation — the 8-lane
//     shared-queue Parallel replay over a RAID5 array healthy, with a
//     dead member (reads reconstruct from the survivors), with seeded
//     op-level injection absorbed by retry/backoff, and with the dead
//     member rebuilding onto a spare through the same contended queue.
//     Deterministic.
//   - availability: the distributed fault-tolerance ablation — the
//     fault-aware distbench run (consistent-hash routing, RPC
//     deadlines, failover with backoff) healthy, with a server node
//     killed at 20 ms, and with the kill while every server rebuilds
//     two dead mirror members from a 2-spare pool. The tallies
//     (timed_out / retried / recovered / lost) and the curve's
//     dip/peak buckets carry the availability story; deterministic.
//
// With -baseline pointing at a previous report (normally the committed
// BENCH_9.json), the run fails if an engine-only guarded row —
// cache_warm_read_64k (the warm path), cache_miss_evict (the cold
// path), or the trace_decode_v1 / trace_decode_v2 per-record decode
// rows — regressed more than 25%. The guard runs before -out is
// written, so a failed run leaves the baseline file intact (the
// regressed report lands in <out>.failed.json instead); it tracks the
// engine-only rows rather than the end-to-end ones, whose raw
// memclr/memcpy share would both mask engine regressions and trip on
// host bandwidth differences. A baseline missing a guarded row (an
// older report format) skips that row with a note.
//
// The worker_scaling simulated quantities are deterministic run to run
// (each lane is a pure function of its worker's record sequence).
// wall_ns and the hot-path ns/op vary with the host, and
// writeback_batches / writeback_horizon_ns depend on when the flusher
// goroutines wake relative to the writers, so they can differ across
// hosts too.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"testing"
	"time"

	"repro/internal/buffercache"
	"repro/internal/distbench"
	"repro/internal/fsim"
	"repro/internal/fsim/stdfs"
	"repro/internal/netsim"
	"repro/internal/simdisk"
	"repro/internal/trace"
	"repro/internal/tracegen"
	"repro/internal/tracesim"
)

type hotPathRow struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// BaselineNsPerOp is the same row's value from the -baseline report
	// (the committed previous trajectory), when it had one: the "before"
	// of a before/after pair.
	BaselineNsPerOp float64 `json:"baseline_ns_per_op,omitempty"`
}

type scalingRow struct {
	Workers          int     `json:"workers"`
	Shards           int     `json:"shards"`
	Records          int     `json:"records"`
	WallNS           int64   `json:"wall_ns"`
	SimElapsedNS     int64   `json:"sim_elapsed_ns"`
	WorkerTimeNS     int64   `json:"worker_time_ns"`
	OverlapX         float64 `json:"overlap_x"`
	SimThroughputOps float64 `json:"sim_throughput_ops_per_sec"`
	SimSpeedupVs1    float64 `json:"sim_speedup_vs_1"`
}

type ablationRow struct {
	Writeback          bool    `json:"writeback"`
	Policy             string  `json:"policy"`
	SimElapsedNS       int64   `json:"sim_elapsed_ns"`
	CloseMeanMS        float64 `json:"close_mean_ms"`
	WritebackBatches   int64   `json:"writeback_batches"`
	WritebackPages     int64   `json:"writeback_pages"`
	WritebackHorizonNS int64   `json:"writeback_horizon_ns"`
}

// contentionRow is one shared-disk-queue replay: n lanes contending one
// event-merged queue under one scheduling policy, write-back off so the
// contention is all foreground. Deterministic run to run, like the
// worker_scaling simulated quantities.
type contentionRow struct {
	Name            string  `json:"name"`
	Lanes           int     `json:"lanes"`
	Policy          string  `json:"policy"`
	SimElapsedNS    int64   `json:"sim_elapsed_ns"`
	ReadMeanMS      float64 `json:"read_mean_ms"`
	Dispatches      int64   `json:"dispatches"`
	SyncDispatches  int64   `json:"sync_dispatches"`
	AsyncDispatches int64   `json:"async_dispatches"`
	MaxPending      int64   `json:"max_pending"`
	QueueDelayNS    int64   `json:"queue_delay_ns"`
}

// faultRow is one leg of the degraded-mode ablation: the 8-lane
// shared-queue Parallel replay over a 4-disk RAID5 array under one
// fault configuration. Foreground read latency moves as reconstruction
// reads and rebuild traffic contend the queue; the recovery counters
// carry the op-level injection tally.
type faultRow struct {
	Name             string  `json:"name"`
	SimElapsedNS     int64   `json:"sim_elapsed_ns"`
	ReadMeanMS       float64 `json:"read_mean_ms"`
	DegradedReads    int64   `json:"degraded_reads"`
	ReconstructReads int64   `json:"reconstruct_reads"`
	RebuildRows      int64   `json:"rebuild_rows"`
	RebuildTimeNS    int64   `json:"rebuild_time_ns"`
	Injected         int64   `json:"injected"`
	Retried          int64   `json:"retried"`
	Recovered        int64   `json:"recovered"`
	Failed           int64   `json:"failed"`
}

// availabilityRow is one leg of the availability ablation: the
// fault-aware distributed benchmark (8 clients x 32 requests against 3
// replicated servers, 5 ms RPC deadline, consistent-hash failover)
// healthy, with a server node killed at 20 ms, and with the kill on top
// of every server concurrently rebuilding two dead mirror members from
// a 2-spare pool. The dip/peak bucket pair summarizes the availability
// curve; the tallies carry the failover story.
type availabilityRow struct {
	Name            string  `json:"name"`
	Nodes           int     `json:"nodes"`
	Requests        int64   `json:"requests"`
	SimMakespanNS   int64   `json:"sim_makespan_ns"`
	ThroughputRPS   float64 `json:"throughput_rps"`
	TimedOut        int64   `json:"timed_out"`
	Retried         int64   `json:"retried"`
	Recovered       int64   `json:"recovered"`
	Lost            int64   `json:"lost"`
	Dropped         int64   `json:"dropped"`
	TimeToSteadyMS  float64 `json:"time_to_steady_ms"`
	DipBucketRPS    float64 `json:"dip_bucket_rps"`
	PeakBucketRPS   float64 `json:"peak_bucket_rps"`
	RebuildRows     int64   `json:"rebuild_rows,omitempty"`
	RebuildMS       float64 `json:"rebuild_ms,omitempty"`
	RebuildComplete bool    `json:"rebuild_complete,omitempty"`
}

// traceFormatRow is one (app, encoding) pair's on-disk cost: the encoded
// size of the generated trace and its bytes/record. v1 is the 48-byte
// fixed-width legacy layout; v2 is the block-framed columnar encoding the
// out-of-core pipeline streams.
type traceFormatRow struct {
	App            string  `json:"app"`
	Version        string  `json:"version"`
	Records        int     `json:"records"`
	Bytes          int     `json:"bytes"`
	BytesPerRecord float64 `json:"bytes_per_record"`
}

type report struct {
	Bench             string            `json:"bench"`
	GeneratedBy       string            `json:"generated_by"`
	TraceApp          string            `json:"trace_app"`
	FileSize          int64             `json:"file_size_bytes"`
	Requests          int               `json:"requests"`
	HotPath           []hotPathRow      `json:"hot_path"`
	TraceFormat       []traceFormatRow  `json:"trace_format,omitempty"`
	WorkerScaling     []scalingRow      `json:"worker_scaling"`
	WritebackAblation []ablationRow     `json:"writeback_ablation"`
	SharedQContention []contentionRow   `json:"sharedq_contention,omitempty"`
	FaultRecovery     []faultRow        `json:"fault_recovery,omitempty"`
	Availability      []availabilityRow `json:"availability,omitempty"`
}

// warmReadBenchName is the replay engine's dominant end-to-end
// operation: the warm 64 KB read against the sparse sample file.
const warmReadBenchName = "warm_read_64k_sparse"

// guardBenchNames are the hot-path rows the -baseline guard tracks: the
// engine-only warm 64 KB cache read (the bulk hit path), the
// engine-only miss/evict cycle (the cold path: page-table install and
// evict plus run-granular disk billing), and the per-record streaming
// decode of both trace encodings (the out-of-core pipeline's inner
// loop). The end-to-end rows are ~80% raw memclr/memcpy, so a 2x
// regression in the engine would move them under the guard's threshold
// while host memory bandwidth differences trip it; the guarded rows
// measure exactly the machinery this guard protects. replay_stream is
// not guarded: it folds in simulated-engine work whose wall cost tracks
// scheduler noise across hosts.
var guardBenchNames = []string{"cache_warm_read_64k", "cache_miss_evict", "trace_decode_v1", "trace_decode_v2"}

func hotPathBenches() []hotPathRow {
	warmStore := func(sparse bool) (fsim.File, []byte) {
		s := fsim.MustNewFileStore(fsim.DefaultConfig())
		var err error
		if sparse {
			_, err = s.CreateSized("f", 1<<30)
		} else {
			_, err = s.Create("f", make([]byte, 1<<20))
		}
		if err != nil {
			fatal(err)
		}
		f, _, err := s.Open("f")
		if err != nil {
			fatal(err)
		}
		buf := make([]byte, 64<<10)
		f.Read(buf) // warm
		return f, buf
	}
	row := func(name string, r testing.BenchmarkResult) hotPathRow {
		return hotPathRow{Name: name, NsPerOp: float64(r.T.Nanoseconds()) / float64(r.N), AllocsPerOp: r.AllocsPerOp()}
	}
	var rows []hotPathRow

	f, buf := warmStore(true)
	rows = append(rows, row(warmReadBenchName, testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.SeekTo(0, 0)
			f.Read(buf)
		}
	})))
	f.Close()

	f, buf = warmStore(false)
	rows = append(rows, row("warm_read_64k_dense", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.SeekTo(0, 0)
			f.Read(buf)
		}
	})))

	wbuf := make([]byte, 64<<10)
	rows = append(rows, row("warm_write_64k", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.SeekTo(0, 0)
			f.Write(wbuf)
		}
	})))
	f.Close()

	// Engine-only rows: the page cache's simulated-timing machinery with
	// no data movement. The end-to-end rows above sit ~a memcpy/memclr of
	// 64 KB higher — real bandwidth cost the engine cannot remove.
	cstore := fsim.MustNewFileStore(fsim.DefaultConfig())
	if _, err := cstore.CreateSized("c", 1<<20); err != nil {
		fatal(err)
	}
	cache := cstore.Cache()
	now := time.Unix(0, 0)
	cache.Read(now, 0, 64<<10)
	rows = append(rows, row("cache_warm_read_64k", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cache.Read(now, 0, 64<<10)
		}
	})))
	rows = append(rows, row("cache_hit_4k", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cache.Read(now, 0, 4096)
		}
	})))

	// Engine-only cold path: a stride of single-page reads through a
	// 64-page cache with read-ahead off, so every read misses and every
	// install evicts — the same loop as buffercache's
	// BenchmarkCacheMissEvict, measuring the page-table install/evict
	// cycle plus the run-granular disk billing.
	mcfg := buffercache.DefaultConfig()
	mcfg.NumPages = 64
	mcfg.PrefetchPages = 0
	mcache := buffercache.MustNew(mcfg, simdisk.MustNew(simdisk.DefaultParams()))
	var moff int64
	rows = append(rows, row("cache_miss_evict", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mcache.Read(now, moff, 4096)
			moff = (moff + 4096) % (1 << 30)
		}
	})))

	// Facade-overhead pair: fs.WalkDir + Open/Read/Close through the
	// io/fs facade over a warm 32-file catalog, against the same catalog
	// read through the native Session.Open+Read path. The delta is the
	// per-file cost of the stdlib adapter (interface wrapping, directory
	// synthesis, ledger billing). Not guarded: both rows are dominated by
	// per-file fixed costs that track host allocator behavior.
	wstore := fsim.MustNewFileStore(fsim.DefaultConfig())
	payload := make([]byte, 4<<10)
	for i := 0; i < 32; i++ {
		if _, err := wstore.Create(fmt.Sprintf("d%d/f%d.bin", i%4, i), payload); err != nil {
			fatal(err)
		}
	}
	fsys := stdfs.New(wstore)
	fbuf := make([]byte, 4<<10)
	rows = append(rows, row("stdfs_walkdir", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			err := fs.WalkDir(fsys, ".", func(p string, d fs.DirEntry, err error) error {
				if err != nil || d.IsDir() {
					return err
				}
				h, err := fsys.Open(p)
				if err != nil {
					return err
				}
				if _, err := h.Read(fbuf); err != nil {
					h.Close()
					return err
				}
				return h.Close()
			})
			if err != nil {
				fatal(err)
			}
		}
	})))
	names := wstore.Names()
	rows = append(rows, row("stdfs_native_read", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, name := range names {
				h, _, err := wstore.Open(name)
				if err != nil {
					fatal(err)
				}
				if _, _, err := h.Read(fbuf); err != nil {
					fatal(err)
				}
				if _, err := h.Close(); err != nil {
					fatal(err)
				}
			}
		}
	})))

	// Trace-pipeline rows, all normalized per record. trace_decode_v1/v2
	// time the streaming Scanner over an in-memory encoding of an
	// 8-worker Parallel trace (re-scanned from the top until b.N records
	// have been consumed, so block framing and header parsing are in the
	// measurement); both decode paths are pinned at 0 allocs/record by
	// TestScannerZeroAlloc. replay_stream is the full out-of-core path —
	// v2 decode, per-PID channel routing, session-lane simulation,
	// streaming aggregation, merge — so its per-record cost sits well
	// above the bare decode rows.
	tparams := tracegen.Params{SampleFile: "sample.dat", FileSize: 32 << 20, Requests: 8192, Workers: 8}
	ttr, err := tracegen.Generate("Parallel", tparams)
	if err != nil {
		fatal(err)
	}
	var v1enc, v2enc bytes.Buffer
	if err := trace.Write(&v1enc, ttr); err != nil {
		fatal(err)
	}
	if err := trace.WriteV2(&v2enc, ttr); err != nil {
		fatal(err)
	}
	scanRow := func(name string, data []byte) {
		rows = append(rows, row(name, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; {
				sc, err := trace.NewScanner(bytes.NewReader(data))
				if err != nil {
					fatal(err)
				}
				for i < b.N && sc.Next() {
					i++
				}
				if err := sc.Err(); err != nil {
					fatal(err)
				}
			}
		})))
	}
	scanRow("trace_decode_v1", v1enc.Bytes())
	scanRow("trace_decode_v2", v2enc.Bytes())

	scfg := fsim.DefaultConfig()
	scfg.Cache.Shards = 8
	scfg.Cache.WritebackThreshold = 8
	sstore := fsim.MustNewFileStore(scfg)
	srp := tracesim.NewReplayer(sstore)
	srp.SampleFileSize = tparams.FileSize
	srp.StreamAggregate = true
	records := int64(len(ttr.Records))
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sc, err := trace.NewScanner(bytes.NewReader(v2enc.Bytes()))
			if err != nil {
				fatal(err)
			}
			if _, err := srp.ReplayStream("Parallel", sc); err != nil {
				fatal(err)
			}
		}
	})
	rows = append(rows, hotPathRow{
		Name:        "replay_stream",
		NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N) / float64(records),
		AllocsPerOp: res.AllocsPerOp() / records,
	})
	sstore.Close()
	return rows
}

// traceFormatRows measures the encoded bytes/record of both trace
// encodings on the two composite workloads. Parallel is the best case
// for the columnar deltas (per-worker sequential runs); Mixed
// interleaves five apps' access patterns, so its offset deltas jump
// more and the v2 rows land a little higher.
func traceFormatRows(fileSize int64) []traceFormatRow {
	var out []traceFormatRow
	for _, app := range []string{"Parallel", "Mixed"} {
		tr, err := tracegen.Generate(app, tracegen.Params{
			SampleFile: "sample.dat", FileSize: fileSize, Requests: 4096, Workers: 8,
		})
		if err != nil {
			fatal(err)
		}
		var v1enc, v2enc bytes.Buffer
		if err := trace.Write(&v1enc, tr); err != nil {
			fatal(err)
		}
		if err := trace.WriteV2(&v2enc, tr); err != nil {
			fatal(err)
		}
		n := len(tr.Records)
		for _, enc := range []struct {
			version string
			size    int
		}{{"v1", v1enc.Len()}, {"v2", v2enc.Len()}} {
			out = append(out, traceFormatRow{
				App: app, Version: enc.version,
				Records: n, Bytes: enc.size,
				BytesPerRecord: float64(enc.size) / float64(n),
			})
		}
	}
	return out
}

func replay(workers, shards, writeback int, policy simdisk.SchedPolicy, queue fsim.DiskQueueMode, fileSize int64, requests int) (*tracesim.Report, *fsim.FileStore, time.Duration, error) {
	params := tracegen.Params{
		SampleFile: "sample.dat", FileSize: fileSize,
		Requests: requests, Workers: workers,
	}
	tr, err := tracegen.Parallel(params)
	if err != nil {
		return nil, nil, 0, err
	}
	cfg := fsim.DefaultConfig()
	cfg.Cache.Shards = shards
	cfg.Cache.WritebackThreshold = writeback
	cfg.Cache.WritebackPolicy = policy
	cfg.DiskQueue = queue
	store, err := fsim.NewFileStore(cfg)
	if err != nil {
		return nil, nil, 0, err
	}
	rp := tracesim.NewReplayer(store)
	rp.SampleFileSize = fileSize
	start := time.Now()
	rep, err := rp.ReplayConcurrent("Parallel", tr)
	wall := time.Since(start)
	if err != nil {
		store.Close()
		return nil, nil, 0, err
	}
	return rep, store, wall, nil
}

// replayFaulted runs one fault_recovery ablation leg: the 8-lane
// shared-queue Parallel replay over a 4-disk RAID5 array under the
// given fault plan, op-level injection schedule, recovery policy, and
// rebuild member (-1 = no rebuild). The foreground geometry matches the
// sharedq_l8_sstf row so the degraded deltas read against it.
func replayFaulted(plan *simdisk.FaultPlan, inject fsim.InjectSpec, retry fsim.RetryPolicy, rebuild int, fileSize int64, requests int) (*tracesim.Report, *fsim.FileStore, error) {
	params := tracegen.Params{
		SampleFile: "sample.dat", FileSize: fileSize,
		Requests: requests, Workers: 8,
	}
	tr, err := tracegen.Parallel(params)
	if err != nil {
		return nil, nil, err
	}
	cfg := fsim.DefaultConfig()
	cfg.Cache.Shards = 8
	cfg.Cache.WritebackPolicy = simdisk.SSTF
	cfg.DiskQueue = fsim.DiskQueueShared
	cfg.Disks = 4
	cfg.RAIDLevel = simdisk.RAID5
	cfg.Faults = plan
	cfg.Inject = inject
	cfg.Retry = retry
	store, err := fsim.NewFileStore(cfg)
	if err != nil {
		return nil, nil, err
	}
	rp := tracesim.NewReplayer(store)
	rp.SampleFileSize = fileSize
	rp.RebuildMember = rebuild
	rep, err := rp.ReplayConcurrent("Parallel", tr)
	if err != nil {
		store.Close()
		return nil, nil, err
	}
	return rep, store, nil
}

// faultRecoveryRows runs the degraded-mode ablation: the same replay
// healthy, with member 1 dead (reads reconstruct from the survivors),
// with seeded injection on top of the dead member (retry/backoff
// absorbs every fault: Budget <= Retry.Max), and with the dead member
// rebuilding onto a spare through the same contended queue.
func faultRecoveryRows(fileSize int64, requests int) ([]faultRow, error) {
	dead := &simdisk.FaultPlan{Faults: []simdisk.Fault{
		{Disk: 1, Kind: simdisk.FaultDevice, At: 0},
	}}
	legs := []struct {
		name    string
		plan    *simdisk.FaultPlan
		inject  fsim.InjectSpec
		retry   fsim.RetryPolicy
		rebuild int
	}{
		{name: "raid5_healthy", rebuild: -1},
		{name: "raid5_degraded", plan: dead, rebuild: -1},
		{
			name: "raid5_degraded_injected", plan: dead, rebuild: -1,
			inject: fsim.InjectSpec{Seed: 7, Rate: 20, Budget: 4},
			retry:  fsim.RetryPolicy{Max: 4, Base: 50 * time.Microsecond},
		},
		{name: "raid5_rebuilding", plan: dead, rebuild: 1},
	}
	rows := make([]faultRow, 0, len(legs))
	for _, leg := range legs {
		rep, store, err := replayFaulted(leg.plan, leg.inject, leg.retry, leg.rebuild, fileSize, requests)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", leg.name, err)
		}
		ds := store.TotalDiskStats()
		store.Close()
		rows = append(rows, faultRow{
			Name:             leg.name,
			SimElapsedNS:     rep.Elapsed.Nanoseconds(),
			ReadMeanMS:       rep.Read.Mean(),
			DegradedReads:    ds.DegradedReads,
			ReconstructReads: ds.ReconstructReads,
			RebuildRows:      rep.RebuildRows,
			RebuildTimeNS:    rep.RebuildTime.Nanoseconds(),
			Injected:         rep.Recovery.Injected,
			Retried:          rep.Recovery.Retried,
			Recovered:        rep.Recovery.Recovered,
			Failed:           rep.Recovery.Failed,
		})
	}
	return rows, nil
}

// availabilityRows runs the availability ablation. The kill target is
// server0: with the small web corpus the consistent-hash ring parks
// some servers without any primary keys, and killing one of those would
// be invisible; server0 owns keys under this ring, so its death forces
// deadline expiries and failover.
func availabilityRows() ([]availabilityRow, error) {
	base := distbench.DefaultConfig()
	base.Nodes = 8
	base.RequestsPerNode = 32
	base.Servers = 3
	base.Deadline = 5 * time.Millisecond
	base.Retry = fsim.RetryPolicy{Max: 3, Base: 200 * time.Microsecond}

	kill, err := netsim.ParseFaultPlan("kill:server0@20ms")
	if err != nil {
		return nil, err
	}
	killCfg := base
	killCfg.NetFaults = kill

	rebuildCfg := killCfg
	rebuildCfg.Store.Disks = 3
	rebuildCfg.Store.RAIDLevel = simdisk.RAID1
	rebuildCfg.Store.Spares = 2
	rebuildCfg.Store.Faults = &simdisk.FaultPlan{Faults: []simdisk.Fault{
		{Disk: 1, Kind: simdisk.FaultDevice, At: 0},
		{Disk: 2, Kind: simdisk.FaultDevice, At: 0},
	}}
	rebuildCfg.RebuildMembers = []int{1, 2}

	legs := []struct {
		name string
		cfg  distbench.Config
	}{
		{"healthy", base},
		{"node_kill", killCfg},
		{"kill_rebuild", rebuildCfg},
	}
	rows := make([]availabilityRow, 0, len(legs))
	for _, leg := range legs {
		res, err := distbench.Run(leg.cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", leg.name, err)
		}
		row := availabilityRow{
			Name:           leg.name,
			Nodes:          res.Nodes,
			Requests:       res.Requests,
			SimMakespanNS:  res.Makespan.Nanoseconds(),
			ThroughputRPS:  res.Throughput,
			TimedOut:       res.TimedOut,
			Retried:        res.Retried,
			Recovered:      res.Recovered,
			Lost:           res.Lost,
			Dropped:        res.Dropped,
			TimeToSteadyMS: res.TimeToSteadyMS,
			RebuildRows:    res.RebuildRows,
			RebuildMS:      res.RebuildMS,
		}
		// Dip = the emptiest bucket after the first completion lands;
		// leading all-zero buckets are cold start, not disruption.
		started := false
		for _, p := range res.Curve {
			if p.Throughput > row.PeakBucketRPS {
				row.PeakBucketRPS = p.Throughput
			}
			if !started && p.Throughput > 0 {
				started = true
				row.DipBucketRPS = p.Throughput
			}
			if started && p.Throughput < row.DipBucketRPS {
				row.DipBucketRPS = p.Throughput
			}
		}
		if len(res.RebuildMembers) > 0 {
			row.RebuildComplete = true
			for _, m := range res.RebuildMembers {
				if m.Rows <= 0 || m.Writes != m.Rows {
					row.RebuildComplete = false
				}
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// loadBaselineHotPath reads every hot-path row of a previous report,
// keyed by name. A missing or unreadable file just disables the guard
// (first run, fresh clone) with a note on stderr.
func loadBaselineHotPath(path string) map[string]float64 {
	buf, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: no baseline (%v); regression guard skipped\n", err)
		return nil
	}
	var old report
	if err := json.Unmarshal(buf, &old); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: unreadable baseline %s (%v); regression guard skipped\n", path, err)
		return nil
	}
	rows := make(map[string]float64, len(old.HotPath))
	for _, r := range old.HotPath {
		if r.NsPerOp > 0 {
			rows[r.Name] = r.NsPerOp
		}
	}
	return rows
}

func main() {
	var (
		out      = flag.String("out", "BENCH_9.json", "output path (\"-\" for stdout)")
		baseline = flag.String("baseline", "", "previous report to guard against (read before -out is written); fail if an engine-only guarded row regresses >25%")
		fileSize = flag.Int64("filesize", 32<<20, "sample file size in bytes")
		requests = flag.Int("requests", 256, "total reads across workers")
	)
	flag.Parse()

	var baseRows map[string]float64
	if *baseline != "" {
		baseRows = loadBaselineHotPath(*baseline)
	}

	const shards = 8
	const threshold = 8
	rep := report{
		Bench:       "simulated-parallel-replay",
		GeneratedBy: "make bench-json",
		TraceApp:    "Parallel",
		FileSize:    *fileSize,
		Requests:    *requests,
	}

	rep.HotPath = hotPathBenches()
	for i := range rep.HotPath {
		rep.HotPath[i].BaselineNsPerOp = baseRows[rep.HotPath[i].Name]
	}
	rep.TraceFormat = traceFormatRows(*fileSize)

	var base float64
	for _, workers := range []int{1, 2, 4, 8} {
		r, store, wall, err := replay(workers, shards, threshold, simdisk.SSTF, fsim.DiskQueuePrivate, *fileSize, *requests)
		if err != nil {
			fatal(err)
		}
		store.Close()
		ops := float64(r.Read.N() + r.Write.N() + r.Seek.N())
		throughput := ops / r.Elapsed.Seconds()
		if workers == 1 {
			base = throughput
		}
		rep.WorkerScaling = append(rep.WorkerScaling, scalingRow{
			Workers:          workers,
			Shards:           shards,
			Records:          int(ops),
			WallNS:           wall.Nanoseconds(),
			SimElapsedNS:     r.Elapsed.Nanoseconds(),
			WorkerTimeNS:     r.WorkerTime.Nanoseconds(),
			OverlapX:         float64(r.WorkerTime) / float64(r.Elapsed),
			SimThroughputOps: throughput,
			SimSpeedupVs1:    throughput / base,
		})
	}

	ablations := []struct {
		writeback int
		policy    simdisk.SchedPolicy
	}{
		{0, simdisk.FCFS},
		{threshold, simdisk.FCFS},
		{threshold, simdisk.SSTF},
		{threshold, simdisk.SCAN},
	}
	for _, ab := range ablations {
		r, store, _, err := replay(8, shards, ab.writeback, ab.policy, fsim.DiskQueuePrivate, *fileSize, *requests)
		if err != nil {
			fatal(err)
		}
		st := store.Cache().Stats()
		row := ablationRow{
			Writeback:        ab.writeback > 0,
			Policy:           ab.policy.String(),
			SimElapsedNS:     r.Elapsed.Nanoseconds(),
			CloseMeanMS:      r.Close.Mean(),
			WritebackBatches: st.WritebackBatches,
			WritebackPages:   st.WritebackPages,
		}
		if h := store.Cache().WritebackHorizon(); !h.IsZero() {
			row.WritebackHorizonNS = h.Sub(store.Timeline().Start()).Nanoseconds()
		}
		if ab.writeback == 0 {
			row.Policy = "off"
		}
		store.Close()
		rep.WritebackAblation = append(rep.WritebackAblation, row)
	}

	for _, lanes := range []int{1, 4, 8} {
		for _, policy := range []simdisk.SchedPolicy{simdisk.FCFS, simdisk.SSTF, simdisk.SCAN} {
			r, store, _, err := replay(lanes, shards, 0, policy, fsim.DiskQueueShared, *fileSize, *requests)
			if err != nil {
				fatal(err)
			}
			qs := store.SharedQueue().Stats()
			store.Close()
			rep.SharedQContention = append(rep.SharedQContention, contentionRow{
				Name:            fmt.Sprintf("sharedq_l%d_%s", lanes, policy),
				Lanes:           lanes,
				Policy:          policy.String(),
				SimElapsedNS:    r.Elapsed.Nanoseconds(),
				ReadMeanMS:      r.Read.Mean(),
				Dispatches:      qs.Dispatches,
				SyncDispatches:  qs.SyncDispatches,
				AsyncDispatches: qs.AsyncDispatches,
				MaxPending:      int64(qs.MaxPending),
				QueueDelayNS:    qs.QueueDelay.Nanoseconds(),
			})
		}
	}

	faultRows, err := faultRecoveryRows(*fileSize, *requests)
	if err != nil {
		fatal(err)
	}
	rep.FaultRecovery = faultRows

	availRows, err := availabilityRows()
	if err != nil {
		fatal(err)
	}
	rep.Availability = availRows

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')

	// Guard BEFORE overwriting -out: when -baseline and -out are the same
	// file (make bench-json), a failed run must leave the committed
	// baseline intact — otherwise a rerun would compare the regression
	// against itself and pass. The regressed report goes to a sidecar
	// file for diagnosis (CI uploads it).
	if len(baseRows) > 0 {
		regressed := false
		for _, name := range guardBenchNames {
			baseNs, ok := baseRows[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "benchjson: baseline has no %s row; that guard skipped\n", name)
				continue
			}
			var fresh float64
			for _, r := range rep.HotPath {
				if r.Name == name {
					fresh = r.NsPerOp
				}
			}
			if fresh <= 0 {
				// A guarded row the baseline has but this run did not
				// produce means the guard's subject was dropped or
				// renamed — fail loudly rather than comparing 0 ns/op.
				fmt.Fprintf(os.Stderr, "benchjson: guarded row %s missing from this run's hot_path\n", name)
				regressed = true
				continue
			}
			limit := baseNs * 1.25
			if fresh > limit {
				fmt.Fprintf(os.Stderr, "benchjson: %s regressed: %.0f ns/op vs baseline %.0f ns/op (limit %.0f, +25%%)\n",
					name, fresh, baseNs, limit)
				regressed = true
				continue
			}
			fmt.Fprintf(os.Stderr, "hot-path guard: %s %.0f ns/op within 25%% of baseline %.0f ns/op\n",
				name, fresh, baseNs)
		}
		if regressed {
			if *out != "-" {
				failed := *out + ".failed.json"
				if werr := os.WriteFile(failed, buf, 0o644); werr != nil {
					fmt.Fprintf(os.Stderr, "benchjson: could not write regressed report: %v\n", werr)
				} else {
					fmt.Fprintf(os.Stderr, "benchjson: regressed report written to %s; %s left untouched\n", failed, *out)
				}
			}
			os.Exit(1)
		}
	}

	if *out != "-" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	} else if _, err := os.Stdout.Write(buf); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}
