// Benchjson emits the shard-scaling and write-back benchmark results as
// machine-readable JSON — the bench trajectory artifact (`make
// bench-json` writes BENCH_3.json, and CI uploads it). Two sections:
//
//   - worker_scaling: the n-worker partitioned replay on an 8-stripe
//     write-back store, one virtual-clock lane per worker. Simulated
//     throughput (operations per simulated second) scales with workers
//     because lanes overlap; sim_speedup_vs_1 is the headline number.
//   - writeback_ablation: the same 8-worker replay with write-back off
//     (flush on close) versus on under each disk scheduling policy,
//     reporting where the flush time went.
//
// The worker_scaling simulated quantities are deterministic run to run
// (each lane is a pure function of its worker's record sequence).
// wall_ns varies with the host, and writeback_batches /
// writeback_horizon_ns depend on when the flusher goroutines wake
// relative to the writers, so they can differ across hosts too.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/fsim"
	"repro/internal/simdisk"
	"repro/internal/tracegen"
	"repro/internal/tracesim"
)

type scalingRow struct {
	Workers          int     `json:"workers"`
	Shards           int     `json:"shards"`
	Records          int     `json:"records"`
	WallNS           int64   `json:"wall_ns"`
	SimElapsedNS     int64   `json:"sim_elapsed_ns"`
	WorkerTimeNS     int64   `json:"worker_time_ns"`
	OverlapX         float64 `json:"overlap_x"`
	SimThroughputOps float64 `json:"sim_throughput_ops_per_sec"`
	SimSpeedupVs1    float64 `json:"sim_speedup_vs_1"`
}

type ablationRow struct {
	Writeback          bool    `json:"writeback"`
	Policy             string  `json:"policy"`
	SimElapsedNS       int64   `json:"sim_elapsed_ns"`
	CloseMeanMS        float64 `json:"close_mean_ms"`
	WritebackBatches   int64   `json:"writeback_batches"`
	WritebackPages     int64   `json:"writeback_pages"`
	WritebackHorizonNS int64   `json:"writeback_horizon_ns"`
}

type report struct {
	Bench             string        `json:"bench"`
	GeneratedBy       string        `json:"generated_by"`
	TraceApp          string        `json:"trace_app"`
	FileSize          int64         `json:"file_size_bytes"`
	Requests          int           `json:"requests"`
	WorkerScaling     []scalingRow  `json:"worker_scaling"`
	WritebackAblation []ablationRow `json:"writeback_ablation"`
}

func replay(workers, shards, writeback int, policy simdisk.SchedPolicy, fileSize int64, requests int) (*tracesim.Report, *fsim.FileStore, time.Duration, error) {
	params := tracegen.Params{
		SampleFile: "sample.dat", FileSize: fileSize,
		Requests: requests, Workers: workers,
	}
	tr, err := tracegen.Parallel(params)
	if err != nil {
		return nil, nil, 0, err
	}
	cfg := fsim.DefaultConfig()
	cfg.Cache.Shards = shards
	cfg.Cache.WritebackThreshold = writeback
	cfg.Cache.WritebackPolicy = policy
	store, err := fsim.NewFileStore(cfg)
	if err != nil {
		return nil, nil, 0, err
	}
	rp := tracesim.NewReplayer(store)
	rp.SampleFileSize = fileSize
	start := time.Now()
	rep, err := rp.ReplayConcurrent("Parallel", tr)
	wall := time.Since(start)
	if err != nil {
		store.Close()
		return nil, nil, 0, err
	}
	return rep, store, wall, nil
}

func main() {
	var (
		out      = flag.String("out", "BENCH_3.json", "output path (\"-\" for stdout)")
		fileSize = flag.Int64("filesize", 32<<20, "sample file size in bytes")
		requests = flag.Int("requests", 256, "total reads across workers")
	)
	flag.Parse()

	const shards = 8
	const threshold = 8
	rep := report{
		Bench:       "simulated-parallel-replay",
		GeneratedBy: "make bench-json",
		TraceApp:    "Parallel",
		FileSize:    *fileSize,
		Requests:    *requests,
	}

	var base float64
	for _, workers := range []int{1, 2, 4, 8} {
		r, store, wall, err := replay(workers, shards, threshold, simdisk.SSTF, *fileSize, *requests)
		if err != nil {
			fatal(err)
		}
		store.Close()
		ops := float64(r.Read.N() + r.Write.N() + r.Seek.N())
		throughput := ops / r.Elapsed.Seconds()
		if workers == 1 {
			base = throughput
		}
		rep.WorkerScaling = append(rep.WorkerScaling, scalingRow{
			Workers:          workers,
			Shards:           shards,
			Records:          int(ops),
			WallNS:           wall.Nanoseconds(),
			SimElapsedNS:     r.Elapsed.Nanoseconds(),
			WorkerTimeNS:     r.WorkerTime.Nanoseconds(),
			OverlapX:         float64(r.WorkerTime) / float64(r.Elapsed),
			SimThroughputOps: throughput,
			SimSpeedupVs1:    throughput / base,
		})
	}

	ablations := []struct {
		writeback int
		policy    simdisk.SchedPolicy
	}{
		{0, simdisk.FCFS},
		{threshold, simdisk.FCFS},
		{threshold, simdisk.SSTF},
		{threshold, simdisk.SCAN},
	}
	for _, ab := range ablations {
		r, store, _, err := replay(8, shards, ab.writeback, ab.policy, *fileSize, *requests)
		if err != nil {
			fatal(err)
		}
		st := store.Cache().Stats()
		row := ablationRow{
			Writeback:        ab.writeback > 0,
			Policy:           ab.policy.String(),
			SimElapsedNS:     r.Elapsed.Nanoseconds(),
			CloseMeanMS:      r.Close.Mean(),
			WritebackBatches: st.WritebackBatches,
			WritebackPages:   st.WritebackPages,
		}
		if h := store.Cache().WritebackHorizon(); !h.IsZero() {
			row.WritebackHorizonNS = h.Sub(store.Timeline().Start()).Nanoseconds()
		}
		if ab.writeback == 0 {
			row.Policy = "off"
		}
		store.Close()
		rep.WritebackAblation = append(rep.WritebackAblation, row)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}
