// Tracebench runs the paper's second benchmark standalone: it replays an
// application I/O trace — loaded from a UMDT file or synthesized on the
// fly — against the simulated file store (or a real directory with -real)
// and prints the per-operation timing report.
//
// Usage:
//
//	tracebench -app Cholesky
//	tracebench -trace ./traces/lu.trace
//	tracebench -app Dmine -real -dir /tmp/replaydir
//	tracebench -tables            # regenerate Tables 1-4
//	tracebench -app Pgrep -concurrent -shards 0   # striped cache, auto
//	tracebench -app Mixed -sweep                  # shard scaling sweep
//	tracebench -app Parallel -workers 8 -concurrent -shards 8 -writeback 8 -sched sstf
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/buffercache"
	"repro/internal/fsim"
	"repro/internal/simdisk"
	"repro/internal/trace"
	"repro/internal/tracegen"
	"repro/internal/tracesim"
)

func main() {
	var (
		app        = flag.String("app", "", "application to synthesize: Dmine, Pgrep, LU, Titan, Cholesky")
		tracePath  = flag.String("trace", "", "path to a UMDT trace file to replay instead")
		fileSize   = flag.Int64("filesize", 1<<30, "sample file size in bytes")
		requests   = flag.Int("requests", 0, "request count override for synthesis (0 = default)")
		real       = flag.Bool("real", false, "replay against a real directory instead of the simulator")
		dir        = flag.String("dir", "", "directory for -real mode (default: a temp dir)")
		tables     = flag.Bool("tables", false, "regenerate the paper's Tables 1-4 and exit")
		perReq     = flag.Bool("requests-detail", false, "print per-request rows")
		concurrent = flag.Bool("concurrent", false, "replay with one goroutine per traced process")
		stream     = flag.Bool("stream", false, "replay out of core: decode records straight off the trace stream into per-process worker queues (implies concurrent; private disk-queue mode only)")
		dump       = flag.Bool("dump", false, "print the trace in text form instead of replaying")
		paced      = flag.Bool("paced", false, "honour the trace's wall-clock stamps as think time")
		shards     = flag.Int("shards", 1, "page-cache lock stripes (power of two); 0 = derive from GOMAXPROCS")
		sweep      = flag.Bool("sweep", false, "replay concurrently at shard counts 1,2,4,...,auto and report scaling")
		workers    = flag.Int("workers", 0, "worker processes for -app Parallel (0 = its default)")
		writeback  = flag.Int("writeback", 0, "background write-back threshold in dirty pages per stripe (0 = flush on close)")
		wbBatch    = flag.Int("writeback-batch", 0, "pages per scheduled write-back drain (0 = whole dirty set)")
		wbHigh     = flag.Int("writeback-highwater", 0, "dirty-page high-water mark per stripe that stalls writers (0 = never; needs -writeback)")
		sched      = flag.String("sched", "fcfs", "disk scheduling policy (write-back batches, and the shared queue): fcfs | sstf | scan")
		diskQueue  = flag.String("disk-queue", "private", "disk-queue mode: private (per-worker timing views) | shared (one contended queue)")
		disks      = flag.Int("disks", 0, "simulated disks in the array (0 = config default)")
		raid       = flag.String("raid", "", "array redundancy: raid0 | raid1 | raid5 (empty = config default)")
		faults     = flag.String("faults", "", `device fault plan, e.g. "fail:1@0s,slow:0@1ms+200us..5ms,media:2@0s:4096+8192"`)
		inject     = flag.String("inject", "", `seeded op-level fault schedule, e.g. "seed=7,rate=40,budget=4,ops=read|write"`)
		retry      = flag.String("retry", "", `session recovery policy, e.g. "max=3,base=50us"`)
		rebuild    = flag.String("rebuild", "", `rebuild these members onto spares during -concurrent replay, e.g. "1" or "1,2" (empty = off)`)
		spares     = flag.Int("spares", 0, "hot-spare pool size the rebuilds draw from (0 = provision ad hoc)")
	)
	flag.Parse()

	policy, err := simdisk.ParsePolicy(*sched)
	if err != nil {
		fatal(err)
	}
	queueMode, err := fsim.ParseDiskQueue(*diskQueue)
	if err != nil {
		fatal(err)
	}
	faultPlan, err := simdisk.ParseFaultPlan(*faults)
	if err != nil {
		fatal(err)
	}
	injectSpec, err := fsim.ParseInjectSpec(*inject)
	if err != nil {
		fatal(err)
	}
	retryPolicy, err := fsim.ParseRetrySpec(*retry)
	if err != nil {
		fatal(err)
	}
	raidLevel, err := simdisk.ParseLevel(*raid)
	if err != nil {
		fatal(err)
	}
	rebuildMembers, err := parseMembers(*rebuild)
	if err != nil {
		fatal(err)
	}
	if len(rebuildMembers) > 0 && !*concurrent {
		fatal(fmt.Errorf("-rebuild runs alongside -concurrent replay; add -concurrent"))
	}
	if *spares < 0 {
		fatal(fmt.Errorf("-spares must be non-negative"))
	}

	params := tracegen.Params{SampleFile: "sample-1gb.dat", FileSize: *fileSize, Requests: *requests, Workers: *workers}

	if *tables {
		tbs, _, err := tracesim.AllTables(params)
		if err != nil {
			fatal(err)
		}
		for _, tb := range tbs {
			fmt.Println(tb.Render())
		}
		return
	}

	var tr *trace.Trace
	var name string
	switch {
	case *stream:
		// Out-of-core mode: the trace is never materialized. Decide the
		// source here; the scanner is opened at replay time.
		if *dump || *sweep {
			fatal(fmt.Errorf("-stream replays out of core; drop -dump/-sweep"))
		}
		switch {
		case *tracePath != "":
			name = *tracePath
		case *app != "":
			name = *app
		default:
			fmt.Fprintln(os.Stderr, "tracebench: -stream needs -app or -trace")
			flag.Usage()
			os.Exit(2)
		}
	case *tracePath != "":
		f, err := os.Open(*tracePath)
		if err != nil {
			fatal(err)
		}
		tr, err = trace.Read(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		name = *tracePath
	case *app == "Parallel":
		// The n-worker partitioned workload: the simulated-parallel
		// scaling subject (disjoint regions, per-worker opens).
		var err error
		tr, err = tracegen.Parallel(params)
		if err != nil {
			fatal(err)
		}
		name = *app
	case *app == "Mixed":
		// The five applications interleaved through one cache — the
		// consolidation workload, and the natural -sweep subject.
		var err error
		tr, err = tracegen.Mixed(params)
		if err != nil {
			fatal(err)
		}
		name = *app
	case *app != "":
		var err error
		tr, err = tracegen.Generate(*app, params)
		if err != nil {
			fatal(err)
		}
		name = *app
	default:
		fmt.Fprintln(os.Stderr, "tracebench: need -app, -trace, or -tables")
		flag.Usage()
		os.Exit(2)
	}

	if *dump {
		if err := trace.Dump(os.Stdout, tr); err != nil {
			fatal(err)
		}
		return
	}

	if *sweep {
		if *real {
			fatal(fmt.Errorf("-sweep replays against the simulator; drop -real"))
		}
		if err := sweepShards(name, tr, *fileSize, *paced, *writeback, policy); err != nil {
			fatal(err)
		}
		return
	}

	var store fsim.Store
	if *real {
		d := *dir
		if d == "" {
			var err error
			d, err = os.MkdirTemp("", "tracebench-")
			if err != nil {
				fatal(err)
			}
			fmt.Printf("replaying in %s\n", d)
		}
		s, err := fsim.NewOSStore(d)
		if err != nil {
			fatal(err)
		}
		store = s
	} else {
		cfg := fsim.DefaultConfig()
		cfg.Cache.Shards = resolveShards(*shards)
		cfg.Cache.WritebackThreshold = *writeback
		cfg.Cache.WritebackBatch = *wbBatch
		cfg.Cache.WritebackHighwater = *wbHigh
		cfg.Cache.WritebackPolicy = policy
		cfg.DiskQueue = queueMode
		if *disks > 0 {
			cfg.Disks = *disks
		}
		if *raid != "" {
			cfg.RAIDLevel = raidLevel
		}
		if faultPlan != nil {
			cfg.Faults = faultPlan
		}
		if *inject != "" {
			cfg.Inject = injectSpec
		}
		if *retry != "" {
			cfg.Retry = retryPolicy
		}
		if *spares > 0 {
			cfg.Spares = *spares
		}
		s, err := fsim.NewFileStore(cfg)
		if err != nil {
			fatal(err)
		}
		defer s.Close()
		store = s
	}

	rp := tracesim.NewReplayer(store)
	rp.SampleFileSize = *fileSize
	rp.Paced = *paced
	rp.RebuildMembers = rebuildMembers
	var rep *tracesim.Report
	var replayed int64
	switch {
	case *stream:
		var sc *trace.Scanner
		var done func() error
		sc, done, err = openScanner(*tracePath, name, params)
		if err != nil {
			fatal(err)
		}
		rep, err = rp.ReplayStream(name, sc)
		if cerr := done(); err == nil {
			err = cerr
		}
		replayed = sc.Count()
	case *concurrent:
		rep, err = rp.ReplayConcurrent(name, tr)
		replayed = int64(len(tr.Records))
	default:
		rep, err = rp.Replay(name, tr)
		replayed = int64(len(tr.Records))
	}
	if err != nil {
		fatal(err)
	}
	fmt.Println(rep.Table().Render())
	fmt.Printf("replayed %d records in %v (simulated elapsed time)\n", replayed, rep.Elapsed)
	if (*concurrent || *stream) && rep.WorkerTime > rep.Elapsed {
		fmt.Printf("worker time %v overlapped %.2fx across lanes\n",
			rep.WorkerTime, float64(rep.WorkerTime)/float64(rep.Elapsed))
	}
	if fs, ok := store.(*fsim.FileStore); ok && fs.Cache().WritebackEnabled() {
		// Quiesce the flushers before reading their counters: serial
		// replay does not settle on its own, and in-flight drains would
		// otherwise race the print (and leave sub-threshold residue dirty).
		fs.Settle()
		st := fs.Cache().Stats()
		horizon := time.Duration(0)
		if h := fs.Cache().WritebackHorizon(); !h.IsZero() {
			horizon = h.Sub(fs.Timeline().Start())
		}
		fmt.Printf("write-back: %d pages in %d scheduled batches, horizon %v\n",
			st.WritebackPages, st.WritebackBatches, horizon)
	}
	if fs, ok := store.(*fsim.FileStore); ok && fs.SharedQueue() != nil {
		q := fs.SharedQueue()
		qs := q.Stats()
		fmt.Printf("shared queue (%s): %d dispatches (%d sync, %d async), max depth %d, queue delay %v\n",
			q.Policy(), qs.Dispatches, qs.SyncDispatches, qs.AsyncDispatches, qs.MaxPending, qs.QueueDelay)
	}
	if rec := rep.Recovery; rec.Any() {
		fmt.Printf("fault recovery: %d injected, %d retried, %d recovered, %d failed\n",
			rec.Injected, rec.Retried, rec.Recovered, rec.Failed)
	}
	if rep.RebuildRows > 0 {
		for _, m := range rep.RebuildMembers {
			fmt.Printf("rebuild: member %d reconstructed, %d blocks (%d spare writes)\n",
				m.Member, m.Rows, m.Writes)
		}
		fmt.Printf("rebuild: %d blocks total in %v (simulated)\n", rep.RebuildRows, rep.RebuildTime)
	}
	if fs, ok := store.(*fsim.FileStore); ok {
		if ds := fs.TotalDiskStats(); ds.DegradedReads+ds.ReconstructReads+ds.MediaErrors+ds.Unrecoverable > 0 {
			fmt.Printf("degraded mode: %d failover reads, %d reconstruct reads, %d media errors, %d unrecoverable, slowdown %v\n",
				ds.DegradedReads, ds.ReconstructReads, ds.MediaErrors, ds.Unrecoverable, ds.SlowdownTime)
		}
	}
	if *perReq {
		for _, r := range rep.Requests {
			fmt.Printf("  #%-4d %-5s size=%-10d seek=%.6f ms read=%.6f ms write=%.6f ms\n",
				r.Index, r.Op, r.Size, r.SeekMS, r.ReadMS, r.WriteMS)
		}
	}
}

// openScanner returns the -stream mode record source: a scanner over
// the trace file when one was given, else over a pipe fed by the
// streaming generator encoding v2 on the fly — either way no record
// slice ever exists. done must be called after the replay drains the
// scanner; it surfaces the source's close/generate error.
func openScanner(tracePath, app string, params tracegen.Params) (*trace.Scanner, func() error, error) {
	if tracePath != "" {
		f, err := os.Open(tracePath)
		if err != nil {
			return nil, nil, err
		}
		sc, err := trace.NewScanner(f)
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		return sc, f.Close, nil
	}
	pr, pw := io.Pipe()
	go func() {
		_, err := tracegen.EncodeV2(pw, app, params)
		pw.CloseWithError(err)
	}()
	sc, err := trace.NewScanner(pr)
	if err != nil {
		pr.Close()
		return nil, nil, err
	}
	return sc, func() error { return pr.Close() }, nil
}

// resolveShards maps the -shards flag to a stripe count: 0 derives from
// GOMAXPROCS, anything else passes through (the store validates it).
func resolveShards(n int) int {
	if n == 0 {
		return buffercache.AutoShards()
	}
	return n
}

// sweepShards replays the trace concurrently once per shard count from 1
// (the single-mutex baseline) doubling up to the machine-derived stripe
// count, and prints wall-clock scaling alongside the simulated-parallel
// numbers: elapsed (max over lanes), summed worker time, and the overlap
// factor — the lock-striping + virtual-time ablation as a command.
func sweepShards(name string, tr *trace.Trace, fileSize int64, paced bool, writeback int, policy simdisk.SchedPolicy) error {
	max := buffercache.AutoShards()
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "shards\twall time\tspeedup\tsim elapsed\tworker time\toverlap\tcache hit rate")
	var baseline time.Duration
	for n := 1; n <= max; n *= 2 {
		cfg := fsim.DefaultConfig()
		cfg.Cache.Shards = n
		cfg.Cache.WritebackThreshold = writeback
		cfg.Cache.WritebackPolicy = policy
		store, err := fsim.NewFileStore(cfg)
		if err != nil {
			return err
		}
		rp := tracesim.NewReplayer(store)
		rp.SampleFileSize = fileSize
		rp.Paced = paced
		start := time.Now()
		rep, err := rp.ReplayConcurrent(name, tr)
		if err != nil {
			return err
		}
		wall := time.Since(start)
		store.Close()
		if n == 1 {
			baseline = wall
		}
		speedup := float64(baseline) / float64(wall)
		overlap := 1.0
		if rep.Elapsed > 0 {
			overlap = float64(rep.WorkerTime) / float64(rep.Elapsed)
		}
		fmt.Fprintf(w, "%d\t%v\t%.2fx\t%v\t%v\t%.2fx\t%.1f%%\n",
			n, wall.Round(time.Microsecond), speedup, rep.Elapsed.Round(time.Microsecond),
			rep.WorkerTime.Round(time.Microsecond), overlap,
			store.Cache().Stats().HitRate()*100)
	}
	return w.Flush()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tracebench: %v\n", err)
	os.Exit(1)
}

// parseMembers parses the -rebuild flag: a comma-separated list of
// member indices ("1" or "1,2"); empty means no rebuild.
func parseMembers(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("-rebuild: bad member %q (want a non-negative index list like \"1,2\")", part)
		}
		out = append(out, n)
	}
	return out, nil
}
