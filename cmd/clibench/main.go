// Clibench regenerates every table and figure of "Benchmarking the CLI
// for I/O-Intensive Computing" (Qin & Xie, IPDPS'05).
//
// Usage:
//
//	clibench -list
//	clibench -experiment all
//	clibench -experiment fig4,table5 -format csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "comma-separated experiment ids, or 'all'")
		format     = flag.String("format", "text", "output format: text or csv")
		list       = flag.Bool("list", false, "list available experiments and exit")
		outDir     = flag.String("output", "", "write each artifact to this directory instead of stdout")
		configPath = flag.String("config", "", "JSON config overriding machine/trace parameters")
	)
	flag.Parse()

	if *configPath != "" {
		f, err := os.Open(*configPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clibench: %v\n", err)
			os.Exit(1)
		}
		opts, err := core.LoadOptions(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "clibench: %v\n", err)
			os.Exit(1)
		}
		core.SetOptions(opts)
	}

	if *list {
		for _, e := range core.Experiments() {
			fmt.Printf("%-12s %-7s %s\n", e.ID, e.Kind, e.Title)
		}
		return
	}
	if *format != "text" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "clibench: unknown format %q (want text or csv)\n", *format)
		os.Exit(2)
	}
	ids := strings.Split(*experiment, ",")
	for i := range ids {
		ids[i] = strings.TrimSpace(ids[i])
	}
	core.SortIDs(ids)
	if *outDir != "" {
		if err := core.RunToDir(*outDir, ids); err != nil {
			fmt.Fprintf(os.Stderr, "clibench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("artifacts written to %s\n", *outDir)
		return
	}
	if err := core.Run(os.Stdout, ids, *format); err != nil {
		fmt.Fprintf(os.Stderr, "clibench: %v\n", err)
		os.Exit(1)
	}
}
