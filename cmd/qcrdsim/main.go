// Qcrdsim runs the paper's first benchmark standalone: it simulates the
// QCRD application on a configurable machine and prints the CPU/I/O
// breakdown, the resource requirements of Eq. 3-5, and (optionally) the
// disk/CPU speedup sweeps of Figures 4-5.
//
// Usage:
//
//	qcrdsim -cpus 4 -disks 8
//	qcrdsim -sweep -base 30s
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/appmodel"
	"repro/internal/metrics"
)

func main() {
	var (
		cpus     = flag.Int("cpus", 1, "number of CPUs")
		disks    = flag.Int("disks", 1, "number of disks")
		parFrac  = flag.Float64("parfrac", 0.75, "Amdahl parallelizable fraction of CPU bursts")
		depth    = flag.Int("qdepth", 6, "I/O queue depth (concurrent streams)")
		base     = flag.Duration("base", appmodel.QCRDBaseTime, "absolute duration of one model unit")
		sweep    = flag.Bool("sweep", false, "also run the Figure 4/5 speedup sweeps")
		analytic = flag.Bool("analytic", false, "print the closed-form evaluation alongside the simulation")
	)
	flag.Parse()

	machine := appmodel.DefaultMachine()
	machine.NumCPUs = *cpus
	machine.NumDisks = *disks
	machine.CPUParFrac = *parFrac
	machine.IOQueueDepth = *depth

	sim, err := appmodel.NewSimulator(machine, *base)
	if err != nil {
		fatal(err)
	}
	app := appmodel.QCRD()
	res, err := sim.Run(app)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("QCRD on %d CPU(s), %d disk(s), base time %v\n\n", *cpus, *disks, *base)
	tb := metrics.NewTable("Execution breakdown",
		"Component", "CPU (s)", "IO (s)", "Comm (s)", "Wall (s)", "CPU %", "IO %")
	tb.AddRow("Application", res.App.CPU.Seconds(), res.App.IO.Seconds(),
		res.App.Comm.Seconds(), res.Wall.Seconds(), res.App.CPUPercent(), res.App.IOPercent())
	for _, pr := range res.Programs {
		tb.AddRow(pr.Name, pr.CPU.Seconds(), pr.IO.Seconds(), pr.Comm.Seconds(),
			pr.Wall.Seconds(), pr.CPUPercent(), pr.IOPercent())
	}
	fmt.Println(tb.Render())

	req := app.Requirements()
	fmt.Printf("Model requirements (relative units): R_CPU=%.4f R_Disk=%.4f R_COM=%.4f\n\n",
		req.CPU, req.Disk, req.Comm)

	if *analytic {
		ana, err := appmodel.Analytic(app, machine, *base)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Analytic wall: %v (simulated %v)\n", ana.Wall, res.Wall)
		errRate, err := appmodel.SimulatorError(app, machine, *base)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Simulator-vs-analytic error: %.2f%%\n\n", errRate*100)
	}

	if *sweep {
		fig4, _, err := appmodel.Figure4(machine, *base)
		if err != nil {
			fatal(err)
		}
		fmt.Println(fig4.RenderLines(44, 10))
		fig5, _, err := appmodel.Figure5(machine, *base)
		if err != nil {
			fatal(err)
		}
		fmt.Println(fig5.RenderLines(44, 10))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "qcrdsim: %v\n", err)
	os.Exit(1)
}
