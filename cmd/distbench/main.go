// Distbench runs the distributed benchmark standalone: client nodes
// issue file requests over the simulated fabric to replicated servers,
// sweeping the client count. With a deadline the clients route by
// consistent hash and fail over past dead replicas; a net-fault plan
// kills server nodes or drops links mid-run, and the availability curve
// shows how deep the throughput dipped and how long recovery took.
//
// Usage:
//
//	distbench
//	distbench -nodes 1,2,4,8 -servers 3
//	distbench -servers 3 -deadline 5ms -retry "max=3,base=200us" -net-faults "kill:server0@20ms"
//	distbench -servers 3 -deadline 5ms -retry "max=3,base=200us" -net-faults "kill:server0@20ms" \
//	    -disks 3 -raid raid1 -faults "fail:1@0s,fail:2@0s" -spares 2 -rebuild 1,2
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/distbench"
	"repro/internal/fsim"
	"repro/internal/netsim"
	"repro/internal/simdisk"
)

func main() {
	var (
		nodes     = flag.String("nodes", "", `client-node counts to sweep, e.g. "1,2,4,8" (empty = the default sweep)`)
		servers   = flag.Int("servers", 1, "replicated server nodes")
		requests  = flag.Int("requests", 64, "requests per client node")
		workers   = flag.Int("workers", 4, "worker threads per server")
		wan       = flag.Bool("wan", false, "use the WAN interconnect instead of the LAN")
		deadline  = flag.Duration("deadline", 0, "client RPC deadline; 0 keeps the fault-free fast path")
		retry     = flag.String("retry", "", `failover retry policy, e.g. "max=3,base=200us"`)
		netFaults = flag.String("net-faults", "", `fabric fault plan, e.g. "kill:server0@20ms,drop:link1@10ms+5ms"`)
		disks     = flag.Int("disks", 0, "simulated disks in each server's array (0 = config default)")
		raid      = flag.String("raid", "", "array redundancy: raid0 | raid1 | raid5 (empty = config default)")
		faults    = flag.String("faults", "", `per-server device fault plan, e.g. "fail:1@0s"`)
		spares    = flag.Int("spares", 0, "hot-spare pool size per server (0 = none)")
		rebuild   = flag.String("rebuild", "", `members every server rebuilds while serving, e.g. "1,2"`)
		curve     = flag.Bool("curve", true, "print the availability curve of the largest fault-aware run")
	)
	flag.Parse()

	cfg := distbench.DefaultConfig()
	cfg.Servers = *servers
	cfg.RequestsPerNode = *requests
	cfg.ServerWorkers = *workers
	if *wan {
		cfg.Net = netsim.WANParams()
	}
	cfg.Deadline = *deadline
	if *retry != "" {
		pol, err := fsim.ParseRetrySpec(*retry)
		if err != nil {
			fatal(err)
		}
		cfg.Retry = pol
	}
	if *netFaults != "" {
		plan, err := netsim.ParseFaultPlan(*netFaults)
		if err != nil {
			fatal(err)
		}
		cfg.NetFaults = plan
	}
	if *disks > 0 {
		cfg.Store.Disks = *disks
	}
	if *raid != "" {
		level, err := simdisk.ParseLevel(*raid)
		if err != nil {
			fatal(err)
		}
		cfg.Store.RAIDLevel = level
	}
	if *faults != "" {
		plan, err := simdisk.ParseFaultPlan(*faults)
		if err != nil {
			fatal(err)
		}
		cfg.Store.Faults = plan
	}
	if *spares > 0 {
		cfg.Store.Spares = *spares
	}
	if *rebuild != "" {
		for _, part := range strings.Split(*rebuild, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 0 {
				fatal(fmt.Errorf("-rebuild: bad member %q", part))
			}
			cfg.RebuildMembers = append(cfg.RebuildMembers, n)
		}
	}

	sweep := distbench.NodeSweep
	if *nodes != "" {
		sweep = nil
		for _, part := range strings.Split(*nodes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fatal(fmt.Errorf("-nodes: bad count %q", part))
			}
			sweep = append(sweep, n)
		}
	}

	results, err := distbench.Sweep(cfg, sweep)
	if err != nil {
		fatal(err)
	}
	fmt.Println(distbench.Table(results).Render())
	fmt.Println(distbench.Figure(results).RenderLines(44, 10))

	last := results[len(results)-1]
	if cfg.Deadline > 0 && *curve {
		fmt.Printf("largest run (%d nodes):\n", last.Nodes)
		fmt.Print(distbench.FormatCurve(last))
	}
	if len(last.RebuildMembers) > 0 {
		for _, m := range last.RebuildMembers {
			fmt.Printf("rebuild (per server): member %d reconstructed, %d blocks (%d spare writes)\n",
				m.Member, m.Rows, m.Writes)
		}
		fmt.Printf("rebuild: %d blocks across servers, slowest copy %.2f ms (simulated)\n",
			last.RebuildRows, last.RebuildMS)
	}
	if last.Lost > 0 {
		fmt.Printf("warning: %d requests exhausted their retry budget\n", last.Lost)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "distbench: %v\n", err)
	os.Exit(1)
}
