// Webbench runs the paper's third benchmark standalone. It can regenerate
// Tables 5-6 and Figure 6, serve the benchmark corpus on a real port
// (the paper's 5050 by default), or drive load against a running server.
//
// Usage:
//
//	webbench -mode tables
//	webbench -mode serve -addr :5050
//	webbench -mode serve -shards 0        # lock-striped page cache, auto
//	webbench -mode serve -lanes -writeback 8 -sched scan   # per-connection lanes
//	webbench -mode servefs -addr :5050    # stdlib http.FileServer over the io/fs facade
//	webbench -mode load -target 127.0.0.1:5050 -clients 8 -requests 100
//	webbench -mode degraded -clients 16 -requests 50   # shed under overload while the array rebuilds
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/buffercache"
	"repro/internal/fsim"
	"repro/internal/metrics"
	"repro/internal/simdisk"
	"repro/internal/vm"
	"repro/internal/webserver"
	"repro/internal/workload"
)

func main() {
	var (
		mode      = flag.String("mode", "tables", "tables | serve | servefs | load | degraded")
		addr      = flag.String("addr", fmt.Sprintf("127.0.0.1:%d", webserver.DefaultPort), "listen address for serve mode")
		target    = flag.String("target", fmt.Sprintf("127.0.0.1:%d", webserver.DefaultPort), "server address for load mode")
		clients   = flag.Int("clients", 4, "concurrent clients in load mode")
		requests  = flag.Int("requests", 50, "requests per client in load mode")
		posts     = flag.Bool("posts", false, "mix POSTs into the load")
		shards    = flag.Int("shards", 1, "page-cache lock stripes for serve mode (power of two); 0 = derive from GOMAXPROCS")
		lanes     = flag.Bool("lanes", false, "serve mode: give every connection its own virtual-time session")
		writeback = flag.Int("writeback", 0, "serve mode: background write-back threshold in dirty pages per stripe (0 = off)")
		wbHigh    = flag.Int("writeback-highwater", 0, "serve mode: dirty-page high-water mark per stripe that stalls writers (0 = never; needs -writeback)")
		sched     = flag.String("sched", "fcfs", "serve mode: disk scheduling policy (write-back, shared queue): fcfs | sstf | scan")
		diskQueue = flag.String("disk-queue", "private", "serve mode: disk-queue mode: private | shared (contended queue across connection lanes; needs -lanes)")
		disks     = flag.Int("disks", 0, "serve mode: simulated disks in the array (0 = config default)")
		raid      = flag.String("raid", "", "serve mode: array redundancy: raid0 | raid1 | raid5 (empty = config default)")
		faults    = flag.String("faults", "", `serve mode: device fault plan, e.g. "fail:1@0s,slow:0@1ms+200us"`)
		retry     = flag.String("retry", "", `serve mode: session recovery policy, e.g. "max=3,base=50us" (needs -lanes to matter)`)
		shed      = flag.String("shed", "", `serve mode: load-shedding policy, e.g. "max=8,deadline=2ms"`)
		spares    = flag.Int("spares", 0, "degraded mode: hot-spare pool size (0 = scenario default)")
		rebuild   = flag.String("rebuild", "", `degraded mode: members to rebuild, e.g. "1,2" (empty = scenario default)`)
	)
	flag.Parse()

	switch *mode {
	case "tables":
		runTables()
	case "serve":
		runServe(*addr, *shards, *lanes, *writeback, *wbHigh, *sched, *diskQueue, *disks, *raid, *faults, *retry, *shed)
	case "servefs":
		runServeFS(*addr, *shards)
	case "load":
		runLoad(*target, *clients, *requests, *posts)
	case "degraded":
		runDegraded(*addr, *clients, *requests, *disks, *raid, *faults, *shed, *rebuild, *spares)
	default:
		fmt.Fprintf(os.Stderr, "webbench: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

func runTables() {
	t5, _, err := webserver.Table5()
	if err != nil {
		fatal(err)
	}
	fmt.Println(t5.Render())
	t6, _, err := webserver.Table6()
	if err != nil {
		fatal(err)
	}
	fmt.Println(t6.Render())
	fig, _, err := webserver.Figure6()
	if err != nil {
		fatal(err)
	}
	fmt.Println(fig.RenderLines(44, 10))
}

func runServe(addr string, shards int, lanes bool, writeback, wbHigh int, sched, diskQueue string, disks int, raid, faults, retry, shed string) {
	cfg := fsim.DefaultConfig()
	if shards == 0 {
		shards = buffercache.AutoShards()
	}
	cfg.Cache.Shards = shards
	policy, err := simdisk.ParsePolicy(sched)
	if err != nil {
		fatal(err)
	}
	queueMode, err := fsim.ParseDiskQueue(diskQueue)
	if err != nil {
		fatal(err)
	}
	if queueMode == fsim.DiskQueueShared && !lanes {
		fatal(fmt.Errorf("-disk-queue shared needs -lanes: the queue contends connection sessions"))
	}
	cfg.Cache.WritebackThreshold = writeback
	cfg.Cache.WritebackHighwater = wbHigh
	cfg.Cache.WritebackPolicy = policy
	cfg.DiskQueue = queueMode
	if disks > 0 {
		cfg.Disks = disks
	}
	if raid != "" {
		level, err := simdisk.ParseLevel(raid)
		if err != nil {
			fatal(err)
		}
		cfg.RAIDLevel = level
	}
	if faults != "" {
		plan, err := simdisk.ParseFaultPlan(faults)
		if err != nil {
			fatal(err)
		}
		cfg.Faults = plan
	}
	if retry != "" {
		pol, err := fsim.ParseRetrySpec(retry)
		if err != nil {
			fatal(err)
		}
		cfg.Retry = pol
	}
	shedPolicy, err := webserver.ParseShedPolicy(shed)
	if err != nil {
		fatal(err)
	}
	store, err := fsim.NewFileStore(cfg)
	if err != nil {
		fatal(err)
	}
	defer store.Close()
	if err := workload.Install(store, workload.WebCorpus()); err != nil {
		fatal(err)
	}
	rt, err := vm.New(vm.DefaultConfig(), nil)
	if err != nil {
		fatal(err)
	}
	rt.RegisterBCL()
	srv, err := webserver.New(webserver.Config{Addr: addr, Store: store, Runtime: rt, Lanes: lanes, Shed: shedPolicy})
	if err != nil {
		fatal(err)
	}
	bound, err := srv.Start()
	if err != nil {
		fatal(err)
	}
	mode := "shared clock"
	if lanes {
		mode = "per-connection lanes"
		if queueMode == fsim.DiskQueueShared {
			mode = fmt.Sprintf("per-connection lanes, shared %s disk queue", policy)
		}
	}
	fmt.Printf("serving benchmark corpus on %s with %d cache stripes, %s (ctrl-c to stop)\n",
		bound, store.Cache().NumShards(), mode)
	for _, spec := range workload.WebCorpus() {
		fmt.Printf("  GET /%s  (%d bytes)\n", spec.Name, spec.Size)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	srv.Close()
	printRecords(srv.Records())
}

// runServeFS serves the benchmark corpus as plain HTTP through
// http.FileServer over the stdfs facade: any HTTP client (curl, a
// browser, hey) becomes a workload generator against the simulator.
// Each request runs on its own session lane; records carry the
// simulated per-request I/O time, like the native server's.
func runServeFS(addr string, shards int) {
	cfg := fsim.DefaultConfig()
	if shards == 0 {
		shards = buffercache.AutoShards()
	}
	cfg.Cache.Shards = shards
	store, err := fsim.NewFileStore(cfg)
	if err != nil {
		fatal(err)
	}
	defer store.Close()
	if err := workload.Install(store, workload.WebCorpus()); err != nil {
		fatal(err)
	}
	handler := webserver.NewHTTPFS(store)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: handler}
	go hs.Serve(ln)
	fmt.Printf("serving benchmark corpus on http://%s via http.FileServer over the io/fs facade (%d cache stripes, ctrl-c to stop)\n",
		ln.Addr(), store.Cache().NumShards())
	for _, spec := range workload.WebCorpus() {
		fmt.Printf("  GET /%s  (%d bytes)\n", spec.Name, spec.Size)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	hs.Close()
	printRecords(handler.Records())
}

func runLoad(target string, clients, requests int, posts bool) {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var lat metrics.Sample
	errs := make(chan error, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl, err := webserver.Dial(target)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			corpus := workload.WebCorpus()
			for i := 0; i < requests; i++ {
				spec := corpus[(id+i)%len(corpus)]
				var ioTime time.Duration
				if posts && i%4 == 3 {
					resp, err := cl.Post(spec.Name, workload.Payload(uint64(i), spec.Size))
					if err != nil {
						errs <- err
						return
					}
					ioTime = resp.ServerIOTime
				} else {
					resp, err := cl.Get(spec.Name)
					if err != nil {
						errs <- err
						return
					}
					ioTime = resp.ServerIOTime
				}
				mu.Lock()
				lat.AddDuration(ioTime)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		fatal(err)
	}
	elapsed := time.Since(start)
	total := clients * requests
	fmt.Printf("%d requests from %d clients in %v (%.0f req/s)\n",
		total, clients, elapsed, float64(total)/elapsed.Seconds())
	fmt.Printf("server-side I/O time: mean %.4f ms, p50 %.4f ms, p99 %.4f ms\n",
		lat.Mean(), lat.Quantile(0.5), lat.Quantile(0.99))
	cdf := metrics.NewFigure("server I/O latency distribution", "quantile", "ms")
	cdf.Add(lat.CDF(11))
	fmt.Println(cdf.RenderLines(44, 8))
}

// runDegraded is the combined robustness scenario: the web tier sheds
// load under overload while the store's RAID array rebuilds dead
// members onto hot spares. One report at the end joins the web-side
// tallies (served / shed / deadlined) with the rebuild's per-member
// outcome and the array's degraded-mode counters. Flags left at their
// zero values take the scenario defaults: a 3-way RAID1 mirror that
// lost two members at t0, a 2-spare pool rebuilding both, and an
// 8-in-flight / 2 ms-deadline shed policy.
func runDegraded(addr string, clients, requests, disks int, raid, faults, shed, rebuild string, spares int) {
	if disks == 0 {
		disks = 3
	}
	if raid == "" {
		raid = "raid1"
	}
	if faults == "" {
		faults = "fail:1@0s,fail:2@0s"
	}
	if spares == 0 {
		spares = 2
	}
	if rebuild == "" {
		rebuild = "1,2"
	}
	if shed == "" {
		shed = "max=8,deadline=2ms"
	}
	level, err := simdisk.ParseLevel(raid)
	if err != nil {
		fatal(err)
	}
	plan, err := simdisk.ParseFaultPlan(faults)
	if err != nil {
		fatal(err)
	}
	shedPolicy, err := webserver.ParseShedPolicy(shed)
	if err != nil {
		fatal(err)
	}
	var members []int
	for _, part := range strings.Split(rebuild, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 0 {
			fatal(fmt.Errorf("-rebuild: bad member %q", part))
		}
		members = append(members, n)
	}

	cfg := fsim.DefaultConfig()
	cfg.Disks = disks
	cfg.RAIDLevel = level
	cfg.Faults = plan
	cfg.Spares = spares
	store, err := fsim.NewFileStore(cfg)
	if err != nil {
		fatal(err)
	}
	defer store.Close()
	if err := workload.Install(store, workload.WebCorpus()); err != nil {
		fatal(err)
	}
	rt, err := vm.New(vm.DefaultConfig(), nil)
	if err != nil {
		fatal(err)
	}
	rt.RegisterBCL()
	srv, err := webserver.New(webserver.Config{Addr: addr, Store: store, Runtime: rt, Lanes: true, Shed: shedPolicy})
	if err != nil {
		fatal(err)
	}
	bound, err := srv.Start()
	if err != nil {
		fatal(err)
	}

	rb, err := store.BeginRebuilds(members)
	if err != nil {
		fatal(err)
	}
	rebuildDone := make(chan struct{})
	go func() {
		rb.Run()
		close(rebuildDone)
	}()

	fmt.Printf("degraded scenario on %s: %d clients x %d requests against a %s array (faults %q), rebuilding members %v from a %d-spare pool, shed policy %s\n",
		bound, clients, requests, raid, faults, members, spares, shedPolicy)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var lat metrics.Sample
	var ok200, ok503 int
	errs := make(chan error, clients)
	corpus := workload.WebCorpus()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl, err := webserver.Dial(bound)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for i := 0; i < requests; i++ {
				spec := corpus[(id+i)%len(corpus)]
				resp, err := cl.Get(spec.Name)
				if err != nil {
					errs <- err
					return
				}
				mu.Lock()
				if resp.Status == 503 {
					ok503++
				} else {
					ok200++
					lat.AddDuration(resp.ServerIOTime)
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		fatal(err)
	}
	<-rebuildDone
	srv.Close()

	rows, elapsed := rb.Rows(), rb.Elapsed()
	if err := rb.Finish(); err != nil {
		fatal(err)
	}

	served, shedN, deadlined := 0, 0, 0
	for _, r := range srv.Records() {
		switch {
		case r.Shed:
			shedN++
		case r.Deadlined:
			deadlined++
		default:
			served++
		}
	}
	fmt.Printf("web tier: %d served, %d shed, %d deadlined (%d clients saw 200, %d saw 503)\n",
		served, shedN, deadlined, ok200, ok503)
	if lat.N() > 0 {
		fmt.Printf("server-side I/O time: mean %.4f ms, p99 %.4f ms\n", lat.Mean(), lat.Quantile(0.99))
	}
	for _, m := range rb.Members() {
		fmt.Printf("rebuild: member %d reconstructed, %d blocks (%d spare writes)\n", m.Member, m.Rows, m.Writes)
	}
	fmt.Printf("rebuild: %d blocks total in %v (simulated)\n", rows, elapsed)
	ds := store.TotalDiskStats()
	fmt.Printf("degraded mode: %d failover reads, %d reconstruct reads, %d rebuild writes\n",
		ds.DegradedReads, ds.ReconstructReads, ds.RebuildWrites)
}

func printRecords(recs []webserver.RequestRecord) {
	if len(recs) == 0 {
		return
	}
	served, shed, deadlined := 0, 0, 0
	for _, r := range recs {
		switch {
		case r.Shed:
			shed++
		case r.Deadlined:
			deadlined++
		default:
			served++
		}
	}
	fmt.Printf("served %d requests (%d shed, %d deadlined):\n", served, shed, deadlined)
	for i, r := range recs {
		if i >= 20 {
			fmt.Printf("  ... and %d more\n", len(recs)-20)
			return
		}
		note := ""
		if r.Shed {
			note = "  [503 shed]"
		} else if r.Deadlined {
			note = "  [503 deadlined]"
		}
		fmt.Printf("  %-4s %-16s %8d bytes  %.4f ms%s\n", r.Kind, r.File, r.Size, r.IOTimeMS(), note)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "webbench: %v\n", err)
	os.Exit(1)
}
