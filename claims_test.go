// Package repro's claims checklist: every quantitative or qualitative
// claim the paper's prose makes about its results, asserted end to end
// against this reproduction. Each test names the claim and the section it
// comes from. These run the full experiment pipelines (reduced scale
// where the full scale only changes constants).
package repro

import (
	"testing"
	"time"

	"repro/internal/appmodel"
	"repro/internal/trace"
	"repro/internal/tracegen"
	"repro/internal/tracesim"
	"repro/internal/vmcompare"
	"repro/internal/webserver"
)

// claimBase keeps behavioral-model claims fast; the shapes are scale-free.
const claimBase = 2 * time.Second

func claimTraceParams() tracegen.Params {
	p := tracegen.DefaultParams()
	p.FileSize = 128 << 20
	p.Requests = 100
	return p
}

// §2.3: "the speedup changes slightly with the increasing value of the
// disk number" — disk speedup is flat and modest.
func TestClaimDiskSpeedupFlat(t *testing.T) {
	_, speedups, err := appmodel.Figure4(appmodel.DefaultMachine(), claimBase)
	if err != nil {
		t.Fatal(err)
	}
	spread := speedups[len(speedups)-1] - speedups[0]
	if spread > 0.5 {
		t.Fatalf("disk speedup spread %.2f too large for 'changes slightly': %v", spread, speedups)
	}
	if speedups[len(speedups)-1] > 1.5 {
		t.Fatalf("disk speedup %.2f exceeds the paper's modest ceiling", speedups[len(speedups)-1])
	}
}

// §2.3: "it is expected to efficiently improve the performance of QCRD by
// increasing the number of CPUs" — CPU speedup clearly dominates.
func TestClaimCPUSpeedupDominates(t *testing.T) {
	_, disks, err := appmodel.Figure4(appmodel.DefaultMachine(), claimBase)
	if err != nil {
		t.Fatal(err)
	}
	_, cpus, err := appmodel.Figure5(appmodel.DefaultMachine(), claimBase)
	if err != nil {
		t.Fatal(err)
	}
	if cpus[len(cpus)-1] < disks[len(disks)-1]+0.5 {
		t.Fatalf("CPU speedup %.2f does not clearly dominate disk speedup %.2f",
			cpus[len(cpus)-1], disks[len(disks)-1])
	}
}

// §2.3: "the speedup is dominated by the first program of the
// application, and the first program runs longer than the second".
func TestClaimProgram1Dominates(t *testing.T) {
	sim := appmodel.MustNewSimulator(appmodel.DefaultMachine(), claimBase)
	res, err := sim.Run(appmodel.QCRD())
	if err != nil {
		t.Fatal(err)
	}
	if res.Programs[0].Wall <= res.Programs[1].Wall {
		t.Fatal("program 1 does not run longer than program 2")
	}
	if res.Wall != res.Programs[0].Wall {
		t.Fatal("application makespan not set by program 1")
	}
}

// §2.3: "compare the simulated result with that generated from a real
// implementation, the error rate is less than 10%" — our analog compares
// the discrete-event simulator to the closed-form model.
func TestClaimModelErrorUnder10Percent(t *testing.T) {
	errRate, err := appmodel.SimulatorError(appmodel.QCRD(), appmodel.DefaultMachine(), claimBase)
	if err != nil {
		t.Fatal(err)
	}
	if errRate >= 0.10 {
		t.Fatalf("model error %.1f%% ≥ 10%%", errRate*100)
	}
}

// §3.4: "for all trace files the time spent closing a file was longer
// than the time taken to open the file".
func TestClaimCloseSlowerThanOpenAllTraces(t *testing.T) {
	for _, app := range tracegen.AppNames {
		rep, err := tracesim.RunApp(app, claimTraceParams())
		if err != nil {
			t.Fatal(err)
		}
		if rep.Close.Mean() <= rep.Open.Mean() {
			t.Errorf("%s: close %.6g ms not slower than open %.6g ms",
				app, rep.Close.Mean(), rep.Open.Mean())
		}
	}
}

// §3.4: "reading 28048 bytes takes more time than reading 133692 bytes
// ... because a page fault occurs".
func TestClaimCholeskyPageFaultInversion(t *testing.T) {
	rep, err := tracesim.RunApp("Cholesky", claimTraceParams())
	if err != nil {
		t.Fatal(err)
	}
	var small, large float64
	for _, r := range rep.Requests {
		if r.Op != trace.OpRead {
			continue // a seek row's Size is its target offset, not a length
		}
		switch r.Size {
		case 28048:
			small = r.ReadMS
		case 84140:
			large = r.ReadMS
		}
	}
	if small == 0 || large == 0 {
		t.Fatal("inversion pair not found in replay")
	}
	if small <= large {
		t.Fatalf("cold 28048-byte read %.4f ms not slower than warm 84140-byte read %.4f ms",
			small, large)
	}
}

// §4.2: "the first file I/O operation by the server takes more time than
// the subsequent read or write operations".
func TestClaimFirstServerIOOperationSlowest(t *testing.T) {
	_, times, err := webserver.Table6()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(times); i++ {
		if times[i] >= times[0] {
			t.Fatalf("trial %d (%.3f ms) not below trial 1 (%.3f ms)", i+1, times[i], times[0])
		}
	}
}

// §4.2 explanation 2: "there is a delay caused by the JIT compiler when
// the web server is handling the first read or write request" — with the
// JIT disabled (native profile) the first-trial penalty largely vanishes.
func TestClaimJITCausesFirstRequestDelay(t *testing.T) {
	results, err := vmcompare.Compare(nil)
	if err != nil {
		t.Fatal(err)
	}
	var sscli, native vmcompare.ProfileResult
	for _, r := range results {
		switch r.Profile.Name {
		case "SSCLI":
			sscli = r
		case "Native":
			native = r
		}
	}
	if sscli.FirstTrialMS() < 10*native.FirstTrialMS() {
		t.Fatalf("JIT share of first-trial cost too small: SSCLI %.3f ms vs native %.3f ms",
			sscli.FirstTrialMS(), native.FirstTrialMS())
	}
}

// §5 (conclusion): "the CLI is a potential virtual machine for
// I/O-intensive computing" — steady-state managed I/O is within a small
// factor of the native baseline.
func TestClaimManagedSteadyStateCompetitive(t *testing.T) {
	results, err := vmcompare.Compare(nil)
	if err != nil {
		t.Fatal(err)
	}
	var sscli, native vmcompare.ProfileResult
	for _, r := range results {
		switch r.Profile.Name {
		case "SSCLI":
			sscli = r
		case "Native":
			native = r
		}
	}
	ratio := sscli.SteadyMS() / native.SteadyMS()
	if ratio > 2.0 {
		t.Fatalf("steady-state managed/native ratio %.2f undermines the paper's conclusion", ratio)
	}
}

// §4.1: "no synchronization is required for write operations" because
// every POST writes a fresh file — concurrent POSTs must produce distinct
// files with intact contents.
func TestClaimPostsNeedNoSynchronization(t *testing.T) {
	h, err := webserver.NewHarness()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	const posts = 12
	done := make(chan error, posts)
	for i := 0; i < posts; i++ {
		go func(i int) {
			c, err := webserver.Dial(h.ServerAddr())
			if err != nil {
				done <- err
				return
			}
			defer c.Close()
			_, err = c.Post("x", []byte{byte(i)})
			done <- err
		}(i)
	}
	for i := 0; i < posts; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	files := map[string]bool{}
	for _, rec := range h.Server.Records() {
		if rec.Kind == webserver.KindPost {
			files[rec.File] = true
		}
	}
	if len(files) != posts {
		t.Fatalf("%d concurrent POSTs produced %d distinct files", posts, len(files))
	}
}
