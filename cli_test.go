// End-to-end tests of the command-line tools: each binary is built once
// and driven through its main flag combinations.
package repro

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles ./cmd/<name> into a per-test-run temp dir and
// returns the binary path. Builds are cached per test binary run.
var builtTools = map[string]string{}

func buildTool(t *testing.T, name string) string {
	t.Helper()
	if path, ok := builtTools[name]; ok {
		return path
	}
	dir := os.TempDir()
	bin := filepath.Join(dir, "repro-clitest-"+name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	builtTools[name] = bin
	return bin
}

// run executes the tool and returns combined output, failing on error.
func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCLIClibenchList(t *testing.T) {
	bin := buildTool(t, "clibench")
	out := run(t, bin, "-list")
	for _, id := range []string{"fig1", "fig4", "table5", "vmcompare", "distload", "sensitivity"} {
		if !strings.Contains(out, id) {
			t.Errorf("-list missing %s", id)
		}
	}
}

func TestCLIClibenchExperiment(t *testing.T) {
	bin := buildTool(t, "clibench")
	out := run(t, bin, "-experiment", "errorcheck,fig1")
	if !strings.Contains(out, "PASS") || !strings.Contains(out, "Figure 1") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestCLIClibenchCSVAndOutputDir(t *testing.T) {
	bin := buildTool(t, "clibench")
	out := run(t, bin, "-experiment", "fig3", "-format", "csv")
	if !strings.Contains(out, "component,CPU,IO") {
		t.Fatalf("csv output:\n%s", out)
	}
	dir := t.TempDir()
	run(t, bin, "-experiment", "errorcheck", "-output", dir)
	if _, err := os.Stat(filepath.Join(dir, "errorcheck.txt")); err != nil {
		t.Fatal(err)
	}
}

func TestCLIClibenchConfig(t *testing.T) {
	bin := buildTool(t, "clibench")
	cfg := filepath.Join(t.TempDir(), "cfg.json")
	if err := os.WriteFile(cfg, []byte(`{"cpus": 2, "base_seconds": 2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out := run(t, bin, "-config", cfg, "-experiment", "errorcheck")
	if !strings.Contains(out, "PASS") {
		t.Fatalf("output:\n%s", out)
	}
	// Bad config must fail loudly.
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte(`{"cpuz": 2}`), 0o644)
	if _, err := exec.Command(bin, "-config", bad).CombinedOutput(); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestCLITracegenAndTracebench(t *testing.T) {
	gen := buildTool(t, "tracegen")
	benchBin := buildTool(t, "tracebench")
	dir := t.TempDir()
	out := run(t, gen, "-out", dir, "-filesize", "67108864", "-requests", "50")
	if !strings.Contains(out, "Cholesky") {
		t.Fatalf("tracegen output:\n%s", out)
	}
	// Replay one generated file.
	out = run(t, benchBin, "-trace", filepath.Join(dir, "lu.trace"), "-filesize", "67108864")
	if !strings.Contains(out, "seek") || !strings.Contains(out, "replayed") {
		t.Fatalf("tracebench output:\n%s", out)
	}
	// Dump mode.
	out = run(t, benchBin, "-app", "Dmine", "-dump", "-filesize", "67108864", "-requests", "20")
	if !strings.Contains(out, "# sample=") {
		t.Fatalf("dump output:\n%s", out)
	}
	// Tables mode (reduced scale).
	out = run(t, benchBin, "-tables", "-filesize", "67108864", "-requests", "40")
	if !strings.Contains(out, "Table 4") {
		t.Fatalf("tables output:\n%s", out)
	}
}

func TestCLITracebenchConcurrentAndPaced(t *testing.T) {
	bin := buildTool(t, "tracebench")
	out := run(t, bin, "-app", "Pgrep", "-concurrent", "-filesize", "67108864", "-requests", "40")
	if !strings.Contains(out, "read") {
		t.Fatalf("concurrent output:\n%s", out)
	}
	out = run(t, bin, "-app", "Dmine", "-paced", "-filesize", "67108864", "-requests", "20")
	if !strings.Contains(out, "replayed") {
		t.Fatalf("paced output:\n%s", out)
	}
}

func TestCLIQcrdsim(t *testing.T) {
	bin := buildTool(t, "qcrdsim")
	out := run(t, bin, "-cpus", "4", "-disks", "2", "-base", "2s", "-analytic")
	for _, want := range []string{"QCRD", "Program1", "Program2", "R_CPU", "Simulator-vs-analytic"} {
		if !strings.Contains(out, want) {
			t.Errorf("qcrdsim missing %q:\n%s", want, out)
		}
	}
}

func TestCLIWebbenchTables(t *testing.T) {
	bin := buildTool(t, "webbench")
	out := run(t, bin, "-mode", "tables")
	for _, want := range []string{"Table 5", "Table 6", "Figure 6"} {
		if !strings.Contains(out, want) {
			t.Errorf("webbench missing %q", want)
		}
	}
}
